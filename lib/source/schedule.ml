type t =
  | Always_up
  | Always_down
  | Down_during of (float * float) list
  | Flaky of { seed : int; period : float; availability : float }

let always_up = Always_up
let always_down = Always_down

let down_during intervals =
  List.iter
    (fun (a, b) ->
      if b < a then invalid_arg "Schedule.down_during: empty interval")
    intervals;
  Down_during (List.sort Stdlib.compare intervals)

let flaky ~seed ~period ~availability =
  if period <= 0.0 then invalid_arg "Schedule.flaky: period must be positive";
  if availability < 0.0 || availability > 1.0 then
    invalid_arg "Schedule.flaky: availability must be in [0,1]";
  Flaky { seed; period; availability }

(* A deterministic hash of (seed, bucket) mapped to [0,1). *)
let bucket_unit seed bucket =
  let h = Hashtbl.hash (seed, bucket, 0x5151) in
  float_of_int (h land 0xFFFFFF) /. float_of_int 0x1000000

let is_up t time =
  match t with
  | Always_up -> true
  | Always_down -> false
  | Down_during intervals ->
      not (List.exists (fun (a, b) -> time >= a && time < b) intervals)
  | Flaky { seed; period; availability } ->
      let bucket = int_of_float (Float.floor (time /. period)) in
      bucket_unit seed bucket < availability

let next_transition t time =
  match t with
  | Always_up | Always_down -> None
  | Down_during intervals ->
      List.filter_map
        (fun (a, b) ->
          if a > time then Some a else if b > time then Some b else None)
        intervals
      |> List.sort Float.compare
      |> fun l -> (match l with [] -> None | x :: _ -> Some x)
  | Flaky { period; _ } ->
      let bucket = Float.floor (time /. period) in
      Some ((bucket +. 1.0) *. period)

let pp ppf = function
  | Always_up -> Fmt.string ppf "always-up"
  | Always_down -> Fmt.string ppf "always-down"
  | Down_during intervals ->
      Fmt.pf ppf "down-during[%a]"
        (Fmt.list ~sep:(Fmt.any "; ") (fun ppf (a, b) -> Fmt.pf ppf "%g..%g" a b))
        intervals
  | Flaky { seed; period; availability } ->
      Fmt.pf ppf "flaky(seed=%d, period=%g, availability=%g)" seed period
        availability
