type t =
  | Always_up
  | Always_down
  | Down_during of (float * float) list
  | Flaky of { seed : int; period : float; availability : float }
  | Flapping of { period : float; up_ms : float }
  | Slow_during of { intervals : (float * float) list; factor : float }

let always_up = Always_up
let always_down = Always_down

(* Shared validation for interval lists: no reversed intervals, and once
   sorted no two intervals may overlap (touching is fine — [stop] is
   exclusive, so [(0,10); (10,20)] is one contiguous outage, and an
   empty [(a,a)] is a harmless no-op). *)
let validate_intervals ~what intervals =
  List.iter
    (fun (a, b) ->
      if b < a then
        invalid_arg (Fmt.str "Schedule.%s: reversed interval %g..%g" what a b))
    intervals;
  let sorted = List.sort Stdlib.compare intervals in
  let rec check = function
    | (_, b1) :: (((a2, _) :: _) as rest) ->
        if a2 < b1 then
          invalid_arg
            (Fmt.str "Schedule.%s: overlapping intervals at %g" what a2);
        check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  sorted

let down_during intervals =
  Down_during (validate_intervals ~what:"down_during" intervals)

let flaky ~seed ~period ~availability =
  if period <= 0.0 then invalid_arg "Schedule.flaky: period must be positive";
  if availability < 0.0 || availability > 1.0 then
    invalid_arg "Schedule.flaky: availability must be in [0,1]";
  Flaky { seed; period; availability }

let flapping ~period ~up_ms =
  if period <= 0.0 then
    invalid_arg "Schedule.flapping: period must be positive";
  if up_ms < 0.0 || up_ms > period then
    invalid_arg "Schedule.flapping: up_ms must be in [0, period]";
  Flapping { period; up_ms }

let slow_during intervals ~factor =
  if factor < 1.0 then
    invalid_arg "Schedule.slow_during: factor must be at least 1";
  Slow_during
    { intervals = validate_intervals ~what:"slow_during" intervals; factor }

(* A deterministic hash of (seed, bucket) mapped to [0,1). *)
let bucket_unit seed bucket =
  let h = Hashtbl.hash (seed, bucket, 0x5151) in
  float_of_int (h land 0xFFFFFF) /. float_of_int 0x1000000

(* Position of [time] within its flapping cycle, in [0, period). *)
let cycle_phase ~period time =
  let phase = Float.rem time period in
  if phase < 0.0 then phase +. period else phase

let is_up t time =
  match t with
  | Always_up | Slow_during _ -> true
  | Always_down -> false
  | Down_during intervals ->
      not (List.exists (fun (a, b) -> time >= a && time < b) intervals)
  | Flaky { seed; period; availability } ->
      let bucket = int_of_float (Float.floor (time /. period)) in
      bucket_unit seed bucket < availability
  | Flapping { period; up_ms } -> cycle_phase ~period time < up_ms

(* The latency multiplier at [time]: 1 everywhere except inside a
   [slow_during] interval. Every pre-existing schedule answers exactly
   1.0, so multiplying by it is a bit-for-bit no-op on those paths. *)
let latency_factor t time =
  match t with
  | Slow_during { intervals; factor }
    when List.exists (fun (a, b) -> time >= a && time < b) intervals ->
      factor
  | Always_up | Always_down | Down_during _ | Flaky _ | Flapping _
  | Slow_during _ ->
      1.0

let next_transition t time =
  match t with
  | Always_up | Always_down -> None
  | Down_during intervals | Slow_during { intervals; _ } ->
      List.filter_map
        (fun (a, b) ->
          if a > time then Some a else if b > time then Some b else None)
        intervals
      |> List.sort Float.compare
      |> fun l -> (match l with [] -> None | x :: _ -> Some x)
  | Flaky { period; _ } ->
      let bucket = Float.floor (time /. period) in
      Some ((bucket +. 1.0) *. period)
  | Flapping { period; up_ms } ->
      let cycle = Float.floor (time /. period) *. period in
      let phase = cycle_phase ~period time in
      if up_ms > 0.0 && phase < up_ms then Some (cycle +. up_ms)
      else Some (cycle +. period)

let pp ppf = function
  | Always_up -> Fmt.string ppf "always-up"
  | Always_down -> Fmt.string ppf "always-down"
  | Down_during intervals ->
      Fmt.pf ppf "down-during[%a]"
        (Fmt.list ~sep:(Fmt.any "; ") (fun ppf (a, b) -> Fmt.pf ppf "%g..%g" a b))
        intervals
  | Flaky { seed; period; availability } ->
      Fmt.pf ppf "flaky(seed=%d, period=%g, availability=%g)" seed period
        availability
  | Flapping { period; up_ms } ->
      Fmt.pf ppf "flapping(period=%g, up=%g)" period up_ms
  | Slow_during { intervals; factor } ->
      Fmt.pf ppf "slow-during[%a]x%g"
        (Fmt.list ~sep:(Fmt.any "; ") (fun ppf (a, b) -> Fmt.pf ppf "%g..%g" a b))
        intervals factor
