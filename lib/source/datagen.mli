(** Deterministic workload generators for the paper's example domains.

    Every generator takes an explicit [seed], so experiment tables are
    exactly reproducible. The domains come from the paper: the person /
    salary examples of Sections 1–2, the employee / manager join of
    Section 3.2, and the water-quality environmental application of
    Section 1 ("multiple databases, distributed geographically, contain
    measurements of water quality"). *)

module V := Disco_value.Value

val person_schema : Disco_relation.Schema.t
(** (id int, name string, salary int) *)

val person_rows : seed:int -> n:int -> V.t array list
(** Distinct ids [0..n-1]; salaries drawn in [10, 500]. *)

val person_two_schema : Disco_relation.Schema.t
(** (id int, name string, regular int, consult int) — Section 2.3's
    [PersonTwo] with split pay. *)

val person_two_rows : seed:int -> n:int -> V.t array list

val employee_schema : Disco_relation.Schema.t
(** (name string, dept string) *)

val manager_schema : Disco_relation.Schema.t
(** (name string, dept string) *)

val employee_rows : seed:int -> n:int -> depts:int -> V.t array list
val manager_rows : seed:int -> depts:int -> V.t array list

val water_schema : Disco_relation.Schema.t
(** (station string, ts int, ph float, turbidity float, oxygen float) *)

val water_rows : seed:int -> station:string -> n:int -> V.t array list

val person_db : seed:int -> name:string -> n:int -> Disco_relation.Database.t
(** A database holding one [name] table of [person_schema] rows. *)

val table_of : Disco_relation.Database.t -> name:string -> Disco_relation.Schema.t -> V.t array list -> Disco_relation.Table.t
(** Create a table in [db] and load the rows. *)

val uniform_int : seed:int -> int -> int -> int -> int -> int
(** [uniform_int ~seed salt index lo hi]: the [index]-th draw from the
    deterministic stream named by [salt], uniform in [[lo, hi]]. *)

val pick_name : seed:int -> int -> string
(** A human-looking name for row [index]. *)
