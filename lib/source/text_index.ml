module V = Disco_value.Value

type doc = { doc_id : int; title : string; body : string }

type t = {
  mutable docs : doc list;  (* reverse insertion order *)
  index : (string, int list ref) Hashtbl.t;  (* word -> doc ids *)
  title_index : (string, int list ref) Hashtbl.t;
  mutable next_id : int;
  mutable version : int;
}

let create () =
  {
    docs = [];
    index = Hashtbl.create 256;
    title_index = Hashtbl.create 64;
    next_id = 0;
    version = 0;
  }

let words text =
  String.lowercase_ascii text
  |> String.map (fun c ->
         if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then c else ' ')
  |> String.split_on_char ' '
  |> List.filter (fun w -> w <> "")
  |> List.sort_uniq String.compare

let post index word doc_id =
  match Hashtbl.find_opt index word with
  | Some ids -> ids := doc_id :: !ids
  | None -> Hashtbl.replace index word (ref [ doc_id ])

let add t ~title ~body =
  let doc_id = t.next_id in
  t.next_id <- doc_id + 1;
  t.docs <- { doc_id; title; body } :: t.docs;
  List.iter (fun w -> post t.index w doc_id) (words body);
  List.iter (fun w -> post t.title_index w doc_id) (words title);
  t.version <- t.version + 1;
  doc_id

let all t = List.rev t.docs

let lookup t index keyword =
  match Hashtbl.find_opt index (String.lowercase_ascii keyword) with
  | None -> []
  | Some ids ->
      let wanted = !ids in
      List.filter (fun d -> List.mem d.doc_id wanted) (all t)

let search t keyword = lookup t t.index keyword
let search_title t keyword = lookup t t.title_index keyword
let cardinal t = List.length t.docs
let version t = t.version

let doc_to_struct d =
  V.strct
    [
      ("id", V.Int d.doc_id);
      ("title", V.String d.title);
      ("body", V.String d.body);
    ]
