(** The physical algebra (paper Section 3.3).

    Implementation rules turn logical expressions into physical plans; the
    [submit] logical operator is implemented by the {!constructor:Exec}
    physical algorithm, whose second argument {e remains a logical
    expression} "because the wrapper interface accepts a logical
    expression". Mediator-side operators get real algorithms (hash join
    vs. nested loops, streaming select/map, bag union).

    Every physical operation has a corresponding logical operation
    ({!to_logical}), which is what makes partial evaluation possible:
    a partly executed plan converts back to a logical expression and then
    to OQL (Section 4). *)

module Expr := Disco_algebra.Expr
module V := Disco_value.Value

type plan =
  | Exec of string * Expr.expr
      (** [Exec (repo, logical)] — ships [logical] to [repo]'s wrapper *)
  | Mk_data of V.t
  | Mk_select of plan * Expr.pred
  | Mk_project of plan * string list
  | Mk_map of plan * Expr.head
  | Nested_loop_join of plan * plan * (string list * string list) list
  | Hash_join of plan * plan * (string list * string list) list
      (** builds a hash table on the smaller input (see
          {!hash_build_side}) and probes with the other; the joined
          struct keeps left fields first either way *)
  | Merge_join of plan * plan * (string list * string list) list
      (** sorts both inputs on their key paths, then merge-scans — the
          paper's merge-join physical algorithm (Section 3.1) *)
  | Semi_join of plan * (string * Expr.expr) * (string list * string list) list
      (** [Semi_join (left, (repo, right_expr), pairs)]: evaluate [left]
          first, then ship the distinct join keys to [repo] as a
          membership filter on [right_expr] and hash-join the reduced
          answer. Extends the paper's model (Sections 3.2 / 6.2: [submit]
          alone "cannot express" semijoins); the key data flows through
          the mediator, never source-to-source. Requires the runtime's
          multi-round execution; {!run_local} rejects it. *)
  | Mk_union of plan list
  | Mk_shard_merge of plan list
      (** The gather step of a sharded scan: a bag union whose members
          are the per-shard branches of one partitioned extent. Same
          logical meaning as {!constructor:Mk_union} except that
          {!run_local} drops tuples an {e earlier} shard already
          produced (each branch's own duplicates survive — bag
          semantics within a shard): during a hash-ring rebalance two
          shards can double-cover a key range, and the merge must not
          double-count the overlap. *)
  | Mk_distinct of plan

val pp : Format.formatter -> plan -> unit
val to_string : plan -> string

exception Physical_error of string

val implement : Expr.expr -> plan
(** Implementation rules: [Submit] → [Exec], [Join] with equality pairs →
    [Hash_join], without → [Nested_loop_join], the rest one-to-one.
    Raises {!Physical_error} on an unlocated [Get] (every source
    collection must sit under a [Submit] by planning time). *)

val semijoin_variants : informed:(string -> Expr.expr -> bool) -> plan -> plan list
(** Semijoin alternatives (both directions) for equi-joins whose sides
    are single execs to distinct repositories — generated only when
    [informed] reports real cost statistics for both calls, since the
    default estimates cannot rank the direction. The original plan is not
    included. *)

val join_algorithm_variants : plan -> plan list
(** Alternative plans obtained by re-implementing each equi-join with the
    other algorithms (hash ↔ merge); the optimizer costs them all. The
    original plan is not included. *)

val to_logical : plan -> Expr.expr
(** The inverse correspondence used by partial evaluation. *)

val execs : plan -> (string * Expr.expr) list
(** All [Exec] nodes ready to issue, preorder. The dependent right side
    of a {!constructor:Semi_join} is {e not} included — it only becomes
    issuable once the left side has materialized. *)

val all_source_exprs : plan -> (string * Expr.expr) list
(** Every source expression the plan may ever issue: ready [Exec]s plus
    the dependent right sides of [Semi_join]s. The mediator derives its
    runtime bindings from this. *)

val semi_joins : plan -> int
(** Number of [Semi_join] nodes remaining. *)

val degrade_semi_joins : plan -> plan
(** Replace every [Semi_join] by a plain [Hash_join] over the original
    (unreduced) right expression — used when building residual queries
    for partial answers. *)

val substitute_execs : (string -> Expr.expr -> plan) -> plan -> plan
(** Replace every [Exec] node (e.g. answered ones by [Mk_data]). *)

(** {1 Mediator-side execution}

    Executes the mediator-resident part of a plan; [Exec] nodes must have
    been substituted away ({!Physical_error} otherwise). Hash join really
    builds a hash table; the two join algorithms agree with the logical
    [Join] semantics. *)

val run_local : plan -> V.t

val hash_build_side : left:V.t -> right:V.t -> [ `Left | `Right ]
(** Which input the hash join builds its table on: the one with fewer
    elements (non-collections count as 1); ties keep the historical
    [`Right] build. Exposed for tests. *)

val compare_key_lists : V.t list -> V.t list -> int
(** Lexicographic comparison of merge-join key lists. Raises
    {!Physical_error} when the lists have different lengths — that means
    a corrupted plan, and silently calling such keys equal would produce
    wrong join results. *)

(** {1 Cost estimation} *)

(** Mediator-side cost constants (virtual ms per tuple). *)
type params = {
  c_select : float;
  c_project : float;
  c_hash : float;  (** per tuple hashed or probed *)
  c_sort : float;  (** per tuple-comparison while sorting for merge join *)
  c_merge : float;  (** per tuple during the merge scan *)
  c_nested : float;  (** per tuple pair compared *)
  c_union : float;
  c_distinct : float;
  default_selectivity : float;  (** for selects without statistics *)
  default_join_selectivity : float;
}

val default_params : params

type cost = {
  time_ms : float;
  rows : float;
  shipped : float;
  defaulted_execs : int;
      (** [exec] nodes whose estimate fell back to the default (no
          recorded calls) *)
}
(** [shipped] counts tuples crossing the wrapper interface (the quantity
    experiment E4 measures). *)

val mediator_op_count : plan -> int
(** Number of mediator-side physical operators ([Exec] bodies count as a
    single node): the quantity the optimizer minimizes when every exec
    estimate is a default — the paper's "maximum amount of computation
    done at the data source" rule (Section 3.3). *)

val estimate :
  ?params:params -> ?batch:bool -> Disco_cost.Cost_model.t -> plan -> cost
(** [batch] (default [false]) costs the plan for the batched transport:
    first-round execs sharing a repository are charged the amortized
    share of the {!Disco_cost.Cost_model.estimate_batch} prediction when
    the model has batch calibration for that repository (falling back to
    the stand-alone call estimate otherwise). *)
