module Expr = Disco_algebra.Expr
module Cost_model = Disco_cost.Cost_model
module V = Disco_value.Value

type plan =
  | Exec of string * Expr.expr
  | Mk_data of V.t
  | Mk_select of plan * Expr.pred
  | Mk_project of plan * string list
  | Mk_map of plan * Expr.head
  | Nested_loop_join of plan * plan * (string list * string list) list
  | Hash_join of plan * plan * (string list * string list) list
  | Merge_join of plan * plan * (string list * string list) list
  | Semi_join of plan * (string * Expr.expr) * (string list * string list) list
  | Mk_union of plan list
  | Mk_shard_merge of plan list
  | Mk_distinct of plan

exception Physical_error of string

let physical_error fmt =
  Format.kasprintf (fun s -> raise (Physical_error s)) fmt

let rec pp ppf = function
  | Exec (repo, e) -> Fmt.pf ppf "exec(%s, %a)" repo Expr.pp e
  | Mk_data v -> Fmt.pf ppf "mkdata(%d rows)" (try V.cardinal v with V.Type_error _ -> 1)
  | Mk_select (p, pred) -> Fmt.pf ppf "mkselect(%a, %a)" Expr.pp_pred pred pp p
  | Mk_project (p, attrs) ->
      Fmt.pf ppf "mkproj(%a, %a)"
        (Fmt.list ~sep:(Fmt.any ",") Fmt.string)
        attrs pp p
  | Mk_map (p, h) -> (
      match h with
      | Expr.Hscalar s -> Fmt.pf ppf "mkmap(%a, %a)" Expr.pp_scalar s pp p
      | Expr.Hstruct _ -> Fmt.pf ppf "mkmap(struct, %a)" pp p)
  | Nested_loop_join (l, r, _) -> Fmt.pf ppf "nljoin(%a, %a)" pp l pp r
  | Hash_join (l, r, _) -> Fmt.pf ppf "hashjoin(%a, %a)" pp l pp r
  | Merge_join (l, r, _) -> Fmt.pf ppf "mergejoin(%a, %a)" pp l pp r
  | Semi_join (l, (repo, re), _) ->
      Fmt.pf ppf "semijoin(%a, exec(%s, %a))" pp l repo Expr.pp re
  | Mk_union ps -> Fmt.pf ppf "mkunion(%a)" (Fmt.list ~sep:(Fmt.any ", ") pp) ps
  | Mk_shard_merge ps ->
      Fmt.pf ppf "shardmerge(%a)" (Fmt.list ~sep:(Fmt.any ", ") pp) ps
  | Mk_distinct p -> Fmt.pf ppf "mkdistinct(%a)" pp p

let to_string p = Fmt.str "%a" pp p

let rec implement = function
  | Expr.Submit (repo, e) -> Exec (repo, e)
  | Expr.Get name -> physical_error "unlocated collection %s" name
  | Expr.Data v -> Mk_data v
  | Expr.Select (e, p) -> Mk_select (implement e, p)
  | Expr.Project (e, attrs) -> Mk_project (implement e, attrs)
  | Expr.Map (e, h) -> Mk_map (implement e, h)
  | Expr.Join (l, r, pairs) ->
      if pairs = [] then Nested_loop_join (implement l, implement r, [])
      else Hash_join (implement l, implement r, pairs)
  | Expr.Union es -> Mk_union (List.map implement es)
  | Expr.Distinct e -> Mk_distinct (implement e)

let rec to_logical = function
  | Exec (repo, e) -> Expr.Submit (repo, e)
  | Mk_data v -> Expr.Data v
  | Mk_select (p, pred) -> Expr.Select (to_logical p, pred)
  | Mk_project (p, attrs) -> Expr.Project (to_logical p, attrs)
  | Mk_map (p, h) -> Expr.Map (to_logical p, h)
  | Nested_loop_join (l, r, pairs) | Hash_join (l, r, pairs)
  | Merge_join (l, r, pairs) ->
      Expr.Join (to_logical l, to_logical r, pairs)
  | Semi_join (l, (repo, re), pairs) ->
      Expr.Join (to_logical l, Expr.Submit (repo, re), pairs)
  | Mk_union ps | Mk_shard_merge ps -> Expr.Union (List.map to_logical ps)
  | Mk_distinct p -> Expr.Distinct (to_logical p)

let rec execs = function
  | Exec (repo, e) -> [ (repo, e) ]
  | Mk_data _ -> []
  | Mk_select (p, _) | Mk_project (p, _) | Mk_map (p, _) | Mk_distinct p ->
      execs p
  | Nested_loop_join (l, r, _) | Hash_join (l, r, _) | Merge_join (l, r, _) ->
      execs l @ execs r
  | Semi_join (l, _, _) -> execs l
  | Mk_union ps | Mk_shard_merge ps -> List.concat_map execs ps

let rec substitute_execs f = function
  | Exec (repo, e) -> f repo e
  | Mk_data v -> Mk_data v
  | Mk_select (p, pred) -> Mk_select (substitute_execs f p, pred)
  | Mk_project (p, attrs) -> Mk_project (substitute_execs f p, attrs)
  | Mk_map (p, h) -> Mk_map (substitute_execs f p, h)
  | Nested_loop_join (l, r, pairs) ->
      Nested_loop_join (substitute_execs f l, substitute_execs f r, pairs)
  | Hash_join (l, r, pairs) ->
      Hash_join (substitute_execs f l, substitute_execs f r, pairs)
  | Merge_join (l, r, pairs) ->
      Merge_join (substitute_execs f l, substitute_execs f r, pairs)
  | Semi_join (l, right, pairs) -> Semi_join (substitute_execs f l, right, pairs)
  | Mk_union ps -> Mk_union (List.map (substitute_execs f) ps)
  | Mk_shard_merge ps -> Mk_shard_merge (List.map (substitute_execs f) ps)
  | Mk_distinct p -> Mk_distinct (substitute_execs f p)

(* -- local execution -- *)

let rec get_path v = function
  | [] -> v
  | f :: rest -> get_path (V.field v f) rest

let merge_structs a b =
  match (a, b) with
  | V.Struct fa, V.Struct fb -> V.strct (fa @ fb)
  | _ ->
      physical_error "join elements must be structs, got %s and %s"
        (V.type_name a) (V.type_name b)

let eval_head elem = function
  | Expr.Hscalar s -> Expr.eval_scalar elem s
  | Expr.Hstruct fields ->
      V.strct (List.map (fun (n, s) -> (n, Expr.eval_scalar elem s)) fields)

(* The hash join builds its table on the smaller input (fewer build rows
   for the same output); ties keep the historical right-side build. *)
let hash_build_side ~left ~right =
  let card v = try V.cardinal v with V.Type_error _ -> 1 in
  if card left < card right then `Left else `Right

(* Merge-join key comparison.  Both key lists are projected from the same
   join-pair list, so unequal lengths can only mean a corrupted plan —
   fail loudly instead of silently declaring the keys equal. *)
let compare_key_lists ka kb =
  let rec go a b =
    match (a, b) with
    | [], [] -> 0
    | x :: xs, y :: ys ->
        let c = V.compare x y in
        if c <> 0 then c else go xs ys
    | _ ->
        physical_error "merge join: key lists of unequal length (%d vs %d)"
          (List.length ka) (List.length kb)
  in
  go ka kb

let rec run_local = function
  | Exec (repo, _) ->
      physical_error "exec(%s) not substituted before local execution" repo
  | Mk_data v -> v
  | Mk_select (p, pred) ->
      V.filter_elements (fun elem -> Expr.eval_pred elem pred) (run_local p)
  | Mk_project (p, attrs) ->
      V.map_elements
        (fun elem -> V.strct (List.map (fun a -> (a, get_path elem [ a ])) attrs))
        (run_local p)
  | Mk_map (p, h) -> V.map_elements (fun elem -> eval_head elem h) (run_local p)
  | Nested_loop_join (l, r, pairs) ->
      let lv = run_local l and rv = run_local r in
      let rows =
        List.concat_map
          (fun le ->
            List.filter_map
              (fun re ->
                let merged = merge_structs le re in
                let ok =
                  List.for_all
                    (fun (pa, pb) ->
                      Expr.eval_pred merged
                        (Expr.Cmp (Expr.Eq, Expr.Attr pa, Expr.Attr pb)))
                    pairs
                in
                if ok then Some merged else None)
              (V.elements rv))
          (V.elements lv)
      in
      V.bag rows
  | Hash_join (l, r, pairs) ->
      let lv = run_local l and rv = run_local r in
      (* Build on the smaller input, keyed by the canonical rendering of
         the join-key values (numeric coercion folded in by keying
         floats); probe with the larger.  The merged struct keeps left
         fields first regardless of which side built. *)
      let key_of elem paths =
        List.map
          (fun path ->
            match get_path elem path with
            | V.Int i -> V.Float (float_of_int i)
            | v -> v)
          paths
      in
      let right_keys = List.map snd pairs and left_keys = List.map fst pairs in
      let build_elems, build_keys, probe_elems, probe_keys, merge =
        match hash_build_side ~left:lv ~right:rv with
        | `Right ->
            ( V.elements rv,
              right_keys,
              V.elements lv,
              left_keys,
              fun probe build -> merge_structs probe build )
        | `Left ->
            ( V.elements lv,
              left_keys,
              V.elements rv,
              right_keys,
              fun probe build -> merge_structs build probe )
      in
      let table = Hashtbl.create (max 16 (List.length build_elems)) in
      List.iter
        (fun be -> Hashtbl.add table (key_of be build_keys) be)
        build_elems;
      let rows =
        List.concat_map
          (fun pe ->
            List.rev_map
              (fun be -> merge pe be)
              (Hashtbl.find_all table (key_of pe probe_keys)))
          probe_elems
      in
      V.bag rows
  | Merge_join (l, r, pairs) ->
      let lv = run_local l and rv = run_local r in
      let left_keys = List.map fst pairs and right_keys = List.map snd pairs in
      let key_of elem paths =
        List.map
          (fun path ->
            match get_path elem path with
            | V.Int i -> V.Float (float_of_int i)
            | v -> v)
          paths
      in
      let cmp_keys = compare_key_lists in
      let sort elems keys =
        List.stable_sort
          (fun a b -> cmp_keys (key_of a keys) (key_of b keys))
          elems
      in
      let ls = sort (V.elements lv) left_keys in
      let rs = sort (V.elements rv) right_keys in
      (* classic merge with duplicate groups on both sides *)
      let rec merge acc ls rs =
        match (ls, rs) with
        | [], _ | _, [] -> acc
        | le :: _, re :: _ -> (
            let kl = key_of le left_keys and kr = key_of re right_keys in
            match cmp_keys kl kr with
            | c when c < 0 -> merge acc (List.tl ls) rs
            | c when c > 0 -> merge acc ls (List.tl rs)
            | _ ->
                let same side keys k =
                  let rec split acc = function
                    | e :: rest when cmp_keys (key_of e keys) k = 0 ->
                        split (e :: acc) rest
                    | rest -> (List.rev acc, rest)
                  in
                  split [] side
                in
                let lgroup, ls' = same ls left_keys kl in
                let rgroup, rs' = same rs right_keys kl in
                let acc =
                  List.fold_left
                    (fun acc le ->
                      List.fold_left
                        (fun acc re -> merge_structs le re :: acc)
                        acc rgroup)
                    acc lgroup
                in
                merge acc ls' rs')
      in
      V.bag (merge [] ls rs)
  | Semi_join (_, (repo, _), _) ->
      physical_error "semijoin(%s) must be resolved by the runtime" repo
  | Mk_union ps ->
      List.fold_left (fun acc p -> V.bag_union acc (run_local p)) (V.bag []) ps
  | Mk_shard_merge ps ->
      (* A hash-ring rebalance window can double-cover a key range, so
         two shards may deliver the same tuple; drop tuples an earlier
         shard already produced, keeping each branch's own duplicates
         (bag semantics within a shard). *)
      let seen = Hashtbl.create 64 in
      let merged =
        List.concat_map
          (fun p ->
            let fresh =
              List.filter
                (fun e -> not (Hashtbl.mem seen e))
                (V.elements (run_local p))
            in
            List.iter (fun e -> Hashtbl.replace seen e ()) fresh;
            fresh)
          ps
      in
      V.bag merged
  | Mk_distinct p -> V.distinct (run_local p)

let rec all_source_exprs = function
  | Exec (repo, e) -> [ (repo, e) ]
  | Mk_data _ -> []
  | Mk_select (p, _) | Mk_project (p, _) | Mk_map (p, _) | Mk_distinct p ->
      all_source_exprs p
  | Nested_loop_join (l, r, _) | Hash_join (l, r, _) | Merge_join (l, r, _) ->
      all_source_exprs l @ all_source_exprs r
  | Semi_join (l, (repo, re), _) -> all_source_exprs l @ [ (repo, re) ]
  | Mk_union ps | Mk_shard_merge ps -> List.concat_map all_source_exprs ps

let rec semi_joins = function
  | Exec _ | Mk_data _ -> 0
  | Mk_select (p, _) | Mk_project (p, _) | Mk_map (p, _) | Mk_distinct p ->
      semi_joins p
  | Nested_loop_join (l, r, _) | Hash_join (l, r, _) | Merge_join (l, r, _) ->
      semi_joins l + semi_joins r
  | Semi_join (l, _, _) -> 1 + semi_joins l
  | Mk_union ps | Mk_shard_merge ps ->
      List.fold_left (fun acc p -> acc + semi_joins p) 0 ps

let rec degrade_semi_joins = function
  | (Exec _ | Mk_data _) as p -> p
  | Mk_select (p, pred) -> Mk_select (degrade_semi_joins p, pred)
  | Mk_project (p, attrs) -> Mk_project (degrade_semi_joins p, attrs)
  | Mk_map (p, h) -> Mk_map (degrade_semi_joins p, h)
  | Mk_distinct p -> Mk_distinct (degrade_semi_joins p)
  | Nested_loop_join (l, r, pairs) ->
      Nested_loop_join (degrade_semi_joins l, degrade_semi_joins r, pairs)
  | Hash_join (l, r, pairs) ->
      Hash_join (degrade_semi_joins l, degrade_semi_joins r, pairs)
  | Merge_join (l, r, pairs) ->
      Merge_join (degrade_semi_joins l, degrade_semi_joins r, pairs)
  | Semi_join (l, (repo, re), pairs) ->
      Hash_join (degrade_semi_joins l, Exec (repo, re), pairs)
  | Mk_union ps -> Mk_union (List.map degrade_semi_joins ps)
  | Mk_shard_merge ps -> Mk_shard_merge (List.map degrade_semi_joins ps)

(* Alternative physical implementations of each equi-join. *)
let join_algorithm_variants plan =
  let rec variants p =
    match p with
    | Exec _ | Mk_data _ -> [ p ]
    | Mk_select (q, pred) -> List.map (fun q -> Mk_select (q, pred)) (variants q)
    | Mk_project (q, attrs) -> List.map (fun q -> Mk_project (q, attrs)) (variants q)
    | Mk_map (q, h) -> List.map (fun q -> Mk_map (q, h)) (variants q)
    | Mk_distinct q -> List.map (fun q -> Mk_distinct q) (variants q)
    | Mk_union ps ->
        (* keep member plans fixed to bound the product *)
        [ Mk_union ps ]
    | Mk_shard_merge ps -> [ Mk_shard_merge ps ]
    | Nested_loop_join (l, r, pairs) ->
        List.concat_map
          (fun l ->
            List.map (fun r -> Nested_loop_join (l, r, pairs)) (variants r))
          (variants l)
    | Hash_join (l, r, pairs) | Merge_join (l, r, pairs) ->
        List.concat_map
          (fun l ->
            List.concat_map
              (fun r ->
                [ Hash_join (l, r, pairs); Merge_join (l, r, pairs) ])
              (variants r))
          (variants l)
    | Semi_join (l, right, pairs) ->
        List.map (fun l -> Semi_join (l, right, pairs)) (variants l)
  in
  List.filter (fun p -> p <> plan) (variants plan)

(* Semijoin alternatives for joins whose both sides are single execs to
   distinct repositories. [informed repo expr] should report whether the
   cost model has real (non-default) statistics for that call — with the
   default 0/1 estimates a semijoin direction cannot be chosen sensibly,
   so none is generated. *)
let semijoin_variants ~informed plan =
  let rec go p =
    match p with
    | Exec _ | Mk_data _ -> [ p ]
    | Mk_select (q, pred) -> List.map (fun q -> Mk_select (q, pred)) (go q)
    | Mk_project (q, attrs) -> List.map (fun q -> Mk_project (q, attrs)) (go q)
    | Mk_map (q, h) -> List.map (fun q -> Mk_map (q, h)) (go q)
    | Mk_distinct q -> List.map (fun q -> Mk_distinct q) (go q)
    | Mk_union ps -> [ Mk_union ps ]
    | Mk_shard_merge ps -> [ Mk_shard_merge ps ]
    | Nested_loop_join (l, r, pairs) -> [ Nested_loop_join (l, r, pairs) ]
    | Semi_join (l, right, pairs) -> [ Semi_join (l, right, pairs) ]
    | Hash_join (l, r, pairs) | Merge_join (l, r, pairs) -> (
        match (l, r) with
        | Exec (r1, le), Exec (r2, re)
          when r1 <> r2 && informed r1 le && informed r2 re ->
            let swapped = List.map (fun (a, b) -> (b, a)) pairs in
            [
              p;
              Semi_join (l, (r2, re), pairs);
              Semi_join (r, (r1, le), swapped);
            ]
        | _ -> [ p ])
  in
  List.filter (fun p -> p <> plan) (go plan)

(* -- cost estimation -- *)

type params = {
  c_select : float;
  c_project : float;
  c_hash : float;
  c_sort : float;
  c_merge : float;
  c_nested : float;
  c_union : float;
  c_distinct : float;
  default_selectivity : float;
  default_join_selectivity : float;
}

let default_params =
  {
    c_select = 0.001;
    c_project = 0.001;
    c_hash = 0.002;
    c_sort = 0.0008;
    c_merge = 0.0005;
    c_nested = 0.0005;
    c_union = 0.0002;
    c_distinct = 0.002;
    default_selectivity = 0.33;
    default_join_selectivity = 0.05;
  }

type cost = {
  time_ms : float;
  rows : float;
  shipped : float;
  defaulted_execs : int;
}

let rec mediator_op_count = function
  | Exec _ | Mk_data _ -> 1
  | Mk_select (p, _) | Mk_project (p, _) | Mk_map (p, _) | Mk_distinct p ->
      1 + mediator_op_count p
  | Nested_loop_join (l, r, _) | Hash_join (l, r, _) | Merge_join (l, r, _) ->
      1 + mediator_op_count l + mediator_op_count r
  | Semi_join (l, _, _) -> 1 + mediator_op_count l
  | Mk_union ps | Mk_shard_merge ps ->
      List.fold_left (fun acc p -> acc + mediator_op_count p) 1 ps

let estimate ?(params = default_params) ?(batch = false) model plan =
  (* Under the batched transport, the first-round execs sharing a
     repository ride one round-trip: when the cost model has batch
     calibration for that repository, charge each member its amortized
     share of the predicted batch time instead of a stand-alone call. *)
  let batch_time =
    if not batch then fun _repo -> None
    else
      let uniq =
        List.fold_left
          (fun acc (repo, e) ->
            if
              List.exists
                (fun (r, e') -> String.equal r repo && Expr.equal e e')
                acc
            then acc
            else (repo, e) :: acc)
          [] (execs plan)
      in
      fun repo ->
        let k =
          List.length (List.filter (fun (r, _) -> String.equal r repo) uniq)
        in
        if k < 2 then None
        else
          match Cost_model.estimate_batch model ~repo ~size:k with
          | None -> None
          | Some t -> Some (t /. float_of_int k)
  in
  let rec go = function
    | Exec (repo, e) ->
        let est = Cost_model.estimate model ~repo e in
        {
          time_ms =
            (match batch_time repo with
            | Some t -> t
            | None -> est.Cost_model.est_time_ms);
          rows = est.Cost_model.est_rows;
          shipped = est.Cost_model.est_rows;
          defaulted_execs =
            (match est.Cost_model.est_basis with
            | Cost_model.Default -> 1
            | Cost_model.Exact _ | Cost_model.Close _ | Cost_model.Indexed ->
                0);
        }
    | Mk_data v ->
        let n = try float_of_int (V.cardinal v) with V.Type_error _ -> 1.0 in
        { time_ms = 0.0; rows = n; shipped = 0.0; defaulted_execs = 0 }
    | Mk_select (p, _) ->
        let c = go p in
        {
          c with
          time_ms = c.time_ms +. (params.c_select *. c.rows);
          rows = c.rows *. params.default_selectivity;
        }
    | Mk_project (p, _) ->
        let c = go p in
        {
          c with
          time_ms = c.time_ms +. (params.c_project *. c.rows);
        }
    | Mk_map (p, _) ->
        let c = go p in
        { c with time_ms = c.time_ms +. (params.c_project *. c.rows) }
    | Nested_loop_join (l, r, _) ->
        let cl = go l and cr = go r in
        {
          time_ms =
            (* inputs fetched in parallel, then the pairwise scan *)
            Float.max cl.time_ms cr.time_ms
            +. (params.c_nested *. cl.rows *. cr.rows);
          rows = cl.rows *. cr.rows *. params.default_join_selectivity;
          shipped = cl.shipped +. cr.shipped;
          defaulted_execs = cl.defaulted_execs + cr.defaulted_execs;
        }
    | Hash_join (l, r, _) ->
        let cl = go l and cr = go r in
        {
          time_ms =
            Float.max cl.time_ms cr.time_ms
            +. (params.c_hash *. (cl.rows +. cr.rows));
          rows = cl.rows *. cr.rows *. params.default_join_selectivity;
          shipped = cl.shipped +. cr.shipped;
          defaulted_execs = cl.defaulted_execs + cr.defaulted_execs;
        }
    | Merge_join (l, r, _) ->
        let cl = go l and cr = go r in
        let nlogn n = n *. Float.max 1.0 (Float.log (Float.max 2.0 n)) in
        {
          time_ms =
            Float.max cl.time_ms cr.time_ms
            +. (params.c_sort *. (nlogn cl.rows +. nlogn cr.rows))
            +. (params.c_merge *. (cl.rows +. cr.rows));
          rows = cl.rows *. cr.rows *. params.default_join_selectivity;
          shipped = cl.shipped +. cr.shipped;
          defaulted_execs = cl.defaulted_execs + cr.defaulted_execs;
        }
    | Semi_join (l, (repo, re), _) ->
        let cl = go l in
        let right_est = Cost_model.estimate model ~repo re in
        (* the membership filter keeps roughly the tuples matching some
           left key *)
        let reduced_rows =
          Float.min right_est.Cost_model.est_rows
            (cl.rows *. right_est.Cost_model.est_rows
            *. params.default_join_selectivity)
        in
        let reduction_ratio =
          if right_est.Cost_model.est_rows <= 0.0 then 1.0
          else reduced_rows /. right_est.Cost_model.est_rows
        in
        {
          (* phases are sequential: left completes before the right call;
             the reduced call is cheaper because transfer dominates *)
          time_ms =
            cl.time_ms
            +. (right_est.Cost_model.est_time_ms
               *. (0.2 +. (0.8 *. reduction_ratio)))
            +. (params.c_hash *. (cl.rows +. reduced_rows));
          rows = cl.rows *. right_est.Cost_model.est_rows
                 *. params.default_join_selectivity;
          shipped = cl.shipped +. reduced_rows;
          defaulted_execs =
            (cl.defaulted_execs
            +
            match right_est.Cost_model.est_basis with
            | Cost_model.Default -> 1
            | Cost_model.Exact _ | Cost_model.Close _ | Cost_model.Indexed ->
                0);
        }
    | Mk_union ps ->
        let cs = List.map go ps in
        {
          time_ms =
            List.fold_left (fun acc c -> Float.max acc c.time_ms) 0.0 cs
            +. params.c_union
               *. List.fold_left (fun acc c -> acc +. c.rows) 0.0 cs;
          rows = List.fold_left (fun acc c -> acc +. c.rows) 0.0 cs;
          shipped = List.fold_left (fun acc c -> acc +. c.shipped) 0.0 cs;
          defaulted_execs =
            List.fold_left (fun acc c -> acc + c.defaulted_execs) 0 cs;
        }
    | Mk_shard_merge ps ->
        (* as Mk_union, plus the per-row overlap check of the merge *)
        let cs = List.map go ps in
        let total_rows = List.fold_left (fun acc c -> acc +. c.rows) 0.0 cs in
        {
          time_ms =
            List.fold_left (fun acc c -> Float.max acc c.time_ms) 0.0 cs
            +. ((params.c_union +. params.c_hash) *. total_rows);
          rows = total_rows;
          shipped = List.fold_left (fun acc c -> acc +. c.shipped) 0.0 cs;
          defaulted_execs =
            List.fold_left (fun acc c -> acc + c.defaulted_execs) 0 cs;
        }
    | Mk_distinct p ->
        let c = go p in
        {
          c with
          time_ms = c.time_ms +. (params.c_distinct *. c.rows);
          rows = c.rows *. 0.7;
        }
  in
  go plan
