type ('k, 'v) node = {
  n_key : 'k;
  mutable n_value : 'v;
  mutable n_prev : ('k, 'v) node option;  (* towards MRU *)
  mutable n_next : ('k, 'v) node option;  (* towards LRU *)
}

type ('k, 'v) t = {
  cap : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;  (* most recently used *)
  mutable tail : ('k, 'v) node option;  (* least recently used *)
  mutable evicted : int;
}

let create ?(capacity = 128) () =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  { cap = capacity; tbl = Hashtbl.create capacity; head = None; tail = None; evicted = 0 }

let capacity t = t.cap
let length t = Hashtbl.length t.tbl

let unlink t node =
  (match node.n_prev with
  | Some p -> p.n_next <- node.n_next
  | None -> t.head <- node.n_next);
  (match node.n_next with
  | Some n -> n.n_prev <- node.n_prev
  | None -> t.tail <- node.n_prev);
  node.n_prev <- None;
  node.n_next <- None

let push_front t node =
  node.n_prev <- None;
  node.n_next <- t.head;
  (match t.head with Some h -> h.n_prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some node ->
      unlink t node;
      push_front t node;
      Some node.n_value

let peek t key = Option.map (fun n -> n.n_value) (Hashtbl.find_opt t.tbl key)

let evict_over_capacity t =
  while Hashtbl.length t.tbl > t.cap do
    match t.tail with
    | None -> assert false (* length > cap >= 1 implies a tail *)
    | Some lru ->
        unlink t lru;
        Hashtbl.remove t.tbl lru.n_key;
        t.evicted <- t.evicted + 1
  done

let add t key value =
  (match Hashtbl.find_opt t.tbl key with
  | Some node ->
      node.n_value <- value;
      unlink t node;
      push_front t node
  | None ->
      let node = { n_key = key; n_value = value; n_prev = None; n_next = None } in
      Hashtbl.replace t.tbl key node;
      push_front t node);
  evict_over_capacity t

let remove t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.tbl key

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None

let evictions t = t.evicted

let to_list t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go ((n.n_key, n.n_value) :: acc) n.n_next
  in
  go [] t.head

let fold f t init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (to_list t)
