module Expr = Disco_algebra.Expr
module V = Disco_value.Value

let log_src = Logs.Src.create "disco.cache" ~doc:"Disco answer cache"

module Log = (val Logs.src_log log_src)

(* -- expression normalization -- *)

let pred_string p = Fmt.str "%a" Expr.pp_pred p
let scalar_string s = Fmt.str "%a" Expr.pp_scalar s

(* Flatten an And/Or chain into its conjuncts/disjuncts. *)
let rec conjuncts = function
  | Expr.And (a, b) -> conjuncts a @ conjuncts b
  | p -> [ p ]

let rec disjuncts = function
  | Expr.Or (a, b) -> disjuncts a @ disjuncts b
  | p -> [ p ]

let rec normalize_pred p =
  match p with
  | Expr.True -> Expr.True
  | Expr.Cmp (op, a, b) -> (
      (* canonical operand order for symmetric operators; > / >= flip to
         < / <= so both spellings share a slot *)
      match op with
      | Expr.Eq | Expr.Ne ->
          if String.compare (scalar_string b) (scalar_string a) < 0 then
            Expr.Cmp (op, b, a)
          else p
      | Expr.Gt -> Expr.Cmp (Expr.Lt, b, a)
      | Expr.Ge -> Expr.Cmp (Expr.Le, b, a)
      | Expr.Lt | Expr.Le | Expr.Like -> p)
  | Expr.Member (s, v) -> Expr.Member (s, v)
  | Expr.And _ ->
      rebuild (fun a b -> Expr.And (a, b)) (List.map normalize_pred (conjuncts p))
  | Expr.Or _ ->
      rebuild (fun a b -> Expr.Or (a, b)) (List.map normalize_pred (disjuncts p))
  | Expr.Not q -> Expr.Not (normalize_pred q)

and rebuild mk parts =
  match List.sort (fun a b -> String.compare (pred_string a) (pred_string b)) parts with
  | [] -> Expr.True
  | first :: rest -> List.fold_left mk first rest

let rec normalize e =
  match e with
  | Expr.Get _ | Expr.Data _ -> e
  | Expr.Select (e, p) -> Expr.Select (normalize e, normalize_pred p)
  | Expr.Project (e, attrs) -> Expr.Project (normalize e, attrs)
  | Expr.Map (e, h) -> Expr.Map (normalize e, h)
  | Expr.Join (l, r, pairs) ->
      Expr.Join (normalize l, normalize r, List.sort compare pairs)
  | Expr.Union es -> Expr.Union (List.map normalize es)
  | Expr.Distinct e -> Expr.Distinct (normalize e)
  | Expr.Submit (repo, e) -> Expr.Submit (repo, normalize e)

let key ~repo expr = repo ^ "|" ^ Expr.to_string (normalize expr)

(* -- the cache proper -- *)

type entry = { e_value : V.t; e_version : int; e_stored_at : float }

type t = {
  lru : (string, entry) Lru.t;
  mutable hits : int;
  mutable misses : int;
  mutable stale : int;
  mutable stale_served : int;
  mutable stale_ms : float;
}

let create ?(capacity = 512) () =
  {
    lru = Lru.create ~capacity ();
    hits = 0;
    misses = 0;
    stale = 0;
    stale_served = 0;
    stale_ms = 0.0;
  }

let find_fresh t ~repo ~version expr =
  match Lru.find t.lru (key ~repo expr) with
  | Some e when e.e_version = version ->
      t.hits <- t.hits + 1;
      Some e.e_value
  | Some _ ->
      (* the source's data moved on: invalid for fresh serving, but kept
         for the outage fallback until overwritten or evicted *)
      t.stale <- t.stale + 1;
      None
  | None ->
      t.misses <- t.misses + 1;
      None

let find_stale t ~repo ~now ~max_stale_ms expr =
  match Lru.find t.lru (key ~repo expr) with
  | Some e when now -. e.e_stored_at <= max_stale_ms ->
      let age = now -. e.e_stored_at in
      t.stale_served <- t.stale_served + 1;
      t.stale_ms <- Float.max t.stale_ms age;
      Log.info (fun m ->
          m "serving exec(%s) from cache at staleness %.1f ms" repo age);
      Some (e.e_value, age)
  | Some _ | None -> None

let store t ~repo ~version ~now expr value =
  Lru.add t.lru (key ~repo expr)
    { e_value = value; e_version = version; e_stored_at = now }

let invalidate_repo t repo =
  let prefix = repo ^ "|" in
  let plen = String.length prefix in
  List.iter
    (fun (k, _) ->
      if String.length k >= plen && String.sub k 0 plen = prefix then
        Lru.remove t.lru k)
    (Lru.to_list t.lru)

let clear t = Lru.clear t.lru

type stats = {
  hits : int;
  misses : int;
  stale : int;
  stale_served : int;
  stale_ms : float;
  evictions : int;
  size : int;
  capacity : int;
}

let stats (t : t) =
  {
    hits = t.hits;
    misses = t.misses;
    stale = t.stale;
    stale_served = t.stale_served;
    stale_ms = t.stale_ms;
    evictions = Lru.evictions t.lru;
    size = Lru.length t.lru;
    capacity = Lru.capacity t.lru;
  }

let reset_stats (t : t) =
  t.hits <- 0;
  t.misses <- 0;
  t.stale <- 0;
  t.stale_served <- 0;
  t.stale_ms <- 0.0

let pp_stats ppf s =
  Fmt.pf ppf
    "%d/%d entries, %d hits, %d misses, %d stale, %d stale-served (max %.1f \
     ms), %d evictions"
    s.size s.capacity s.hits s.misses s.stale s.stale_served s.stale_ms
    s.evictions
