(** A bounded least-recently-used map.

    The shared eviction policy behind the mediator's caches: the
    {!Disco_cache.Answer_cache} bounds materialized source answers with
    it, and the mediator's plan cache reuses the same module instead of
    growing an unbounded [Hashtbl]. Keys are hashed structurally;
    recency is maintained with an intrusive doubly-linked list, so
    [find]/[add]/[remove] are O(1). *)

type ('k, 'v) t

val create : ?capacity:int -> unit -> ('k, 'v) t
(** A fresh cache holding at most [capacity] entries (default 128;
    raises [Invalid_argument] when [capacity < 1]). *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup that marks the entry most-recently used. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Lookup without touching recency — for inspection paths that must not
    perturb the eviction order. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace, making the entry most-recently used; the
    least-recently-used entry is evicted when the cache is over
    capacity. *)

val remove : ('k, 'v) t -> 'k -> unit

val clear : ('k, 'v) t -> unit
(** Drop every entry. The cumulative {!evictions} counter is preserved —
    clearing is not evicting. *)

val evictions : ('k, 'v) t -> int
(** Cumulative count of capacity evictions since creation. *)

val fold : ('k -> 'v -> 'a -> 'a) -> ('k, 'v) t -> 'a -> 'a

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Entries most-recently-used first. *)
