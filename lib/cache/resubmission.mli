(** The automatic resubmission manager (paper §4: "this partial answer
    could be submitted as a new query").

    Records every partial answer the mediator produces, watches the
    availability schedules of the repositories that blocked it, and —
    when the virtual clock reaches a possible recovery — replays the
    residual OQL. Each replay either completes the query or shrinks the
    residual further (partial answers fold already-arrived data into the
    query text), so under any schedule that eventually brings sources
    back, every entry converges to [Complete]; the per-query round count
    is the convergence measure experiment E11 reports.

    The manager is deliberately decoupled from the mediator: replays go
    through a [run] callback (the mediator side provides one, see
    [Disco_core.Mediator.resubmission_runner]), and recovery detection
    only needs a [source_of] lookup. Recovered data flows back into the
    {!Answer_cache} automatically when the mediator runs with one. *)

module Clock := Disco_source.Clock
module Source := Disco_source.Source

(** What one replay of a recorded query produced. *)
type run_result =
  | Run_complete
  | Run_partial of { oql : string; unavailable : string list }
      (** the (possibly smaller) residual and the repositories still
          blocking it *)

type state =
  | Pending
  | Converged of int  (** rounds of resubmission until [Complete] *)

type entry = {
  id : int;
  original_oql : string;  (** the residual as first recorded *)
  mutable oql : string;  (** the current residual (shrinks per round) *)
  mutable unavailable : string list;
  mutable rounds : int;
  mutable state : state;
}

type t

val create : clock:Clock.t -> unit -> t

val record : t -> oql:string -> unavailable:string list -> int
(** Enqueue a partial answer's residual query; returns its id. *)

val entries : t -> entry list
(** All entries, in recording order. *)

val pending : t -> entry list

val next_recovery : t -> source_of:(string -> Source.t option) -> float option
(** The earliest virtual time strictly after now at which a repository
    blocking some pending entry may change availability
    ({!Disco_source.Schedule.next_transition}); [None] when every
    blocking schedule is constant (no recovery will ever happen) or
    nothing is pending. *)

val step : t -> source_of:(string -> Source.t option) -> run:(string -> run_result) -> int
(** Replay each pending entry whose blocking repositories include one
    that is up at the current virtual time (an entry with no recorded
    blockers is always tried). Returns the number of entries that
    converged this round. *)

val drain :
  ?max_rounds:int ->
  t ->
  source_of:(string -> Source.t option) ->
  run:(string -> run_result) ->
  int
(** Alternate {!step} with advancing the clock to {!next_recovery} until
    every entry converges, no recovery is in sight, or [max_rounds]
    (default 100) clock jumps have been taken. Returns the number of
    entries converged during the drain. *)
