(** The mediator-side semantic answer cache.

    Caches the result of every completed [exec(repository, expr)] call,
    keyed on the repository name plus a {e normalized} logical expression
    (see {!normalize}), and stamped with the source's
    {!Disco_source.Source.data_version} at answer time. The runtime
    consults the cache before issuing an [exec]:

    - an entry whose version still matches the source is a {b fresh hit}
      and answers the call without touching the source (0 tuples
      shipped);
    - an entry whose version moved is invalid for fresh lookups (it
      counts as [stale] and the exec is re-issued, overwriting it), but
      remains eligible for {b stale serving}: under the mediator's
      [Cached_fallback] semantics a call to an {e unavailable} source is
      answered from the cached fragment when its age is within
      [max_stale_ms], degrading gracefully under outages instead of
      returning a residual query (the §4 staleness discussion made
      operational).

    Entries are bounded by the shared {!Lru} policy; all counters are
    cumulative. *)

module Expr := Disco_algebra.Expr
module V := Disco_value.Value

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 512 entries. *)

val normalize : Expr.expr -> Expr.expr
(** Canonicalize an expression so equivalent spellings share a cache
    slot: [And]/[Or] chains are flattened and sorted, [=]/[!=] operands
    are ordered, and [>]/[>=] comparisons flip to [<]/[<=]. Purely
    syntactic — semantics are preserved. *)

val key : repo:string -> Expr.expr -> string
(** The cache key: repository name + printed normalized expression. *)

val find_fresh : t -> repo:string -> version:int -> Expr.expr -> V.t option
(** The cached answer when one exists {e and} its recorded data version
    equals [version]. A version mismatch counts on the [stale] counter
    and misses (the caller re-executes); absence counts on [misses]. *)

val find_stale :
  t -> repo:string -> now:float -> max_stale_ms:float -> Expr.expr ->
  (V.t * float) option
(** The cached answer regardless of version, provided its age
    ([now - stored_at]) is at most [max_stale_ms]; returns the value and
    the served age. Used by the runtime's [Cached_fallback] path when the
    source is down. Counts on [stale_served]. *)

val store : t -> repo:string -> version:int -> now:float -> Expr.expr -> V.t -> unit
(** Record a completed exec answer (replacing any previous entry for the
    same key), possibly evicting the least-recently-used entry. *)

val invalidate_repo : t -> string -> unit
(** Drop every entry of one repository (e.g. after an out-of-band bulk
    load the version counter cannot describe). *)

val clear : t -> unit

(** Cumulative counters. [stale_ms] is the maximum age ever served by
    {!find_stale}. *)
type stats = {
  hits : int;  (** fresh hits: answered from cache, source untouched *)
  misses : int;  (** no entry for the key *)
  stale : int;  (** entry found but its data version had moved *)
  stale_served : int;  (** outage fallbacks served by {!find_stale} *)
  stale_ms : float;
  evictions : int;
  size : int;
  capacity : int;
}

val stats : t -> stats
val reset_stats : t -> unit
(** Zero the counters; entries are kept. *)

val pp_stats : Format.formatter -> stats -> unit
