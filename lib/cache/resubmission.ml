module Clock = Disco_source.Clock
module Schedule = Disco_source.Schedule
module Source = Disco_source.Source

let log_src = Logs.Src.create "disco.resubmit" ~doc:"Disco resubmission manager"

module Log = (val Logs.src_log log_src)

type run_result =
  | Run_complete
  | Run_partial of { oql : string; unavailable : string list }

type state = Pending | Converged of int

type entry = {
  id : int;
  original_oql : string;
  mutable oql : string;
  mutable unavailable : string list;
  mutable rounds : int;
  mutable state : state;
}

type t = {
  clock : Clock.t;
  mutable next_id : int;
  mutable queue : entry list;  (* newest first *)
}

let create ~clock () = { clock; next_id = 0; queue = [] }

let record t ~oql ~unavailable =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.queue <-
    { id; original_oql = oql; oql; unavailable; rounds = 0; state = Pending }
    :: t.queue;
  Log.info (fun m ->
      m "recorded partial #%d (blocked on %s)" id (String.concat ", " unavailable));
  id

let entries t = List.rev t.queue
let pending t = List.filter (fun e -> e.state = Pending) (entries t)

let next_recovery t ~source_of =
  let now = Clock.now t.clock in
  List.fold_left
    (fun acc e ->
      List.fold_left
        (fun acc repo ->
          match Option.map Source.schedule (source_of repo) with
          | Some sched -> (
              match Schedule.next_transition sched now with
              | Some when_ -> (
                  match acc with
                  | Some best -> Some (Float.min best when_)
                  | None -> Some when_)
              | None -> acc)
          | None -> acc)
        acc e.unavailable)
    None (pending t)

let worth_trying t ~source_of e =
  let now = Clock.now t.clock in
  e.unavailable = []
  || List.exists
       (fun repo ->
         match source_of repo with
         | Some src -> Source.is_up src now
         | None -> false)
       e.unavailable

let step t ~source_of ~run =
  List.fold_left
    (fun converged e ->
      if worth_trying t ~source_of e then (
        e.rounds <- e.rounds + 1;
        match run e.oql with
        | Run_complete ->
            e.state <- Converged e.rounds;
            e.unavailable <- [];
            Log.info (fun m -> m "partial #%d converged after %d round(s)" e.id e.rounds);
            converged + 1
        | Run_partial { oql; unavailable } ->
            e.oql <- oql;
            e.unavailable <- unavailable;
            converged)
      else converged)
    0 (pending t)

let drain ?(max_rounds = 100) t ~source_of ~run =
  let rec go jumps converged =
    let converged = converged + step t ~source_of ~run in
    if pending t = [] || jumps >= max_rounds then converged
    else
      match next_recovery t ~source_of with
      | None -> converged (* nothing will ever come back *)
      | Some when_ ->
          Clock.advance_to t.clock when_;
          go (jumps + 1) converged
  in
  go 0 0
