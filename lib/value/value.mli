(** The ODMG value domain used throughout Disco.

    Values flow between data sources, wrappers, and mediators. Collections
    come in the three ODMG flavours: bags (unordered, duplicates allowed),
    sets (unordered, no duplicates) and lists (ordered). Bags and sets are
    kept in a canonical sorted form so that structural comparison coincides
    with collection equality; use the smart constructors {!bag}, {!set} and
    {!strct} to maintain the invariants. *)

(** Object identity. OIDs never cross the wrapper interface (paper Section
    3.2): they identify mediator-resident objects such as repositories and
    wrappers. *)
type oid = {
  oid_id : int;  (** unique within a mediator *)
  oid_class : string;  (** name of the interface the object instantiates *)
}

type t =
  | Null  (** missing / unavailable value *)
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Object of oid  (** reference to a mediator object *)
  | Struct of (string * t) list
      (** invariant: field names sorted, no duplicates *)
  | Bag of t list  (** invariant: elements sorted (canonical multiset) *)
  | Set of t list  (** invariant: elements sorted and deduplicated *)
  | List of t list  (** order is significant *)

exception Type_error of string
(** Raised by operations applied to values of the wrong shape, e.g. field
    access on a non-struct. *)

(** {1 Smart constructors} *)

val bag : t list -> t
(** [bag xs] is the canonical bag of the elements of [xs]. *)

val set : t list -> t
(** [set xs] is the canonical set of the elements of [xs] (duplicates
    removed). *)

val strct : (string * t) list -> t
(** [strct fields] sorts [fields] by name. Raises {!Type_error} on duplicate
    field names. *)

val list : t list -> t

(** {1 Comparison} *)

val compare : t -> t -> int
(** Total structural order. [Int] and [Float] carrying the same numeric
    value are {e not} equal (types are distinct); use {!numeric_compare}
    for OQL comparison semantics. *)

val equal : t -> t -> bool

val numeric_compare : t -> t -> int option
(** OQL comparison: numerics compare by value across [Int]/[Float]; values
    of incomparable types yield [None]. [Null] compares equal only to
    [Null] and is less than everything else. *)

(** {1 Accessors} *)

val field : t -> string -> t
(** [field v name] projects field [name] out of struct [v]. Accessing any
    field of [Null] yields [Null] (missing data propagates). Raises
    {!Type_error} if [v] is not a struct, or the field is absent. *)

val field_opt : t -> string -> t option

val elements : t -> t list
(** Elements of a bag, set or list. Raises {!Type_error} otherwise. *)

val is_collection : t -> bool

val to_bool : t -> bool
(** Raises {!Type_error} if the value is not a [Bool]. *)

val to_int : t -> int
val to_float : t -> float
(** [to_float] accepts both [Int] and [Float]. *)

val to_string_exn : t -> string

(** {1 Collection algebra} *)

val bag_union : t -> t -> t
(** Union of two bags is a bag (paper Section 1.3): multiset sum. Sets are
    promoted to bags. Raises {!Type_error} on non-collections. *)

val set_union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val flatten : t -> t
(** [flatten c] flattens a collection of collections one level, per OQL.
    The result is a bag unless [c] and all elements are sets/lists of the
    same flavour. *)

val distinct : t -> t
(** Bag to set conversion. *)

val map_elements : (t -> t) -> t -> t
(** Apply a function to each element, preserving the collection flavour
    (re-canonicalizing bags and sets). *)

val filter_elements : (t -> bool) -> t -> t
val cardinal : t -> int

(** {1 Aggregates} *)

val agg_count : t -> t
val agg_sum : t -> t
(** Sum of a collection of numerics; [Int 0] on the empty collection.
    [Null] elements are ignored, per SQL convention. *)

val agg_avg : t -> t
val agg_min : t -> t
(** [Null] on the empty collection. *)

val agg_max : t -> t

val like_match : pattern:string -> string -> bool
(** SQL/OQL [like] matching: [%] matches any substring, [_] any single
    character, everything else literally. *)

(** {1 Rendering} *)

val pp : Format.formatter -> t -> unit
(** Renders in the paper's surface syntax, e.g.
    [Bag("Mary", "Sam")], [struct(name: "Mary", salary: 200)]. *)

val to_string : t -> string

val type_name : t -> string
(** A short name of the value's runtime type, for error messages. *)
