type oid = { oid_id : int; oid_class : string }

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Object of oid
  | Struct of (string * t) list
  | Bag of t list
  | Set of t list
  | List of t list

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | Object _ -> "object"
  | Struct _ -> "struct"
  | Bag _ -> "bag"
  | Set _ -> "set"
  | List _ -> "list"

(* Rank used to order values of distinct constructors. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | String _ -> 4
  | Object _ -> 5
  | Struct _ -> 6
  | Bag _ -> 7
  | Set _ -> 8
  | List _ -> 9

let rec compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | String x, String y -> String.compare x y
  | Object x, Object y ->
      let c = String.compare x.oid_class y.oid_class in
      if c <> 0 then c else Int.compare x.oid_id y.oid_id
  | Struct xs, Struct ys -> compare_fields xs ys
  | Bag xs, Bag ys | Set xs, Set ys | List xs, List ys -> compare_lists xs ys
  | _ -> Int.compare (rank a) (rank b)

and compare_lists xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
      let c = compare x y in
      if c <> 0 then c else compare_lists xs' ys'

and compare_fields xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | (nx, vx) :: xs', (ny, vy) :: ys' ->
      let c = String.compare nx ny in
      if c <> 0 then c
      else
        let c = compare vx vy in
        if c <> 0 then c else compare_fields xs' ys'

let equal a b = compare a b = 0

let numeric_compare a b =
  match (a, b) with
  | Int x, Float y -> Some (Float.compare (float_of_int x) y)
  | Float x, Int y -> Some (Float.compare x (float_of_int y))
  | Null, Null -> Some 0
  | Null, _ -> Some (-1)
  | _, Null -> Some 1
  | _ ->
      if rank a = rank b then Some (compare a b)
      else None

let bag xs = Bag (List.sort compare xs)
let set xs = Set (List.sort_uniq compare xs)
let list xs = List xs

let strct fields =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) fields in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then type_error "duplicate struct field %s" a
        else check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  Struct sorted

let field_opt v name =
  match v with
  | Struct fields -> List.assoc_opt name fields
  | Null -> Some Null
  | _ -> None

let field v name =
  match v with
  | Struct fields -> (
      match List.assoc_opt name fields with
      | Some x -> x
      | None -> type_error "struct has no field %s" name)
  | Null -> Null
  | other -> type_error "field access .%s on non-struct %s" name (type_name other)

let elements = function
  | Bag xs | Set xs | List xs -> xs
  | v -> type_error "expected a collection, got a %s" (type_name v)

let is_collection = function Bag _ | Set _ | List _ -> true | _ -> false

let to_bool = function
  | Bool b -> b
  | v -> type_error "expected bool, got %s" (type_name v)

let to_int = function
  | Int i -> i
  | _ -> type_error "expected int"

let to_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | _ -> type_error "expected numeric"

let to_string_exn = function
  | String s -> s
  | _ -> type_error "expected string"

let bag_union a b =
  match (a, b) with
  | (Bag _ | Set _ | List _), (Bag _ | Set _ | List _) ->
      bag (elements a @ elements b)
  | _ -> type_error "union of non-collections"

let set_union a b = set (elements a @ elements b)

(* Multiset intersection / difference on the canonical sorted element
   lists. *)
let rec inter_sorted xs ys =
  match (xs, ys) with
  | [], _ | _, [] -> []
  | x :: xs', y :: ys' ->
      let c = compare x y in
      if c = 0 then x :: inter_sorted xs' ys'
      else if c < 0 then inter_sorted xs' ys
      else inter_sorted xs ys'

let rec diff_sorted xs ys =
  match (xs, ys) with
  | xs, [] -> xs
  | [], _ -> []
  | x :: xs', y :: ys' ->
      let c = compare x y in
      if c = 0 then diff_sorted xs' ys'
      else if c < 0 then x :: diff_sorted xs' ys
      else diff_sorted xs ys'

let sorted_elements v =
  match v with
  | Bag xs | Set xs -> xs
  | List xs -> List.sort compare xs
  | _ -> elements v

let inter a b =
  match (a, b) with
  | Set xs, Set ys -> Set (inter_sorted xs ys)
  | _ -> Bag (inter_sorted (sorted_elements a) (sorted_elements b))

let diff a b =
  match (a, b) with
  | Set xs, Set ys -> Set (diff_sorted xs ys)
  | _ -> Bag (diff_sorted (sorted_elements a) (sorted_elements b))

let flatten c =
  let elems = elements c in
  let all = List.concat_map elements elems in
  match c with
  | Set _ when List.for_all (function Set _ -> true | _ -> false) elems ->
      set all
  | List _ when List.for_all (function List _ -> true | _ -> false) elems ->
      List all
  | _ -> bag all

let distinct c = set (elements c)

let map_elements f = function
  | Bag xs -> bag (List.map f xs)
  | Set xs -> set (List.map f xs)
  | List xs -> List (List.map f xs)
  | v -> type_error "map over non-collection %s" (type_name v)

let filter_elements p = function
  | Bag xs -> Bag (List.filter p xs)
  | Set xs -> Set (List.filter p xs)
  | List xs -> List (List.filter p xs)
  | _ -> type_error "filter over non-collection"

let cardinal c = List.length (elements c)
let agg_count c = Int (cardinal c)

let numeric_elements c =
  List.filter (function Null -> false | _ -> true) (elements c)

let agg_sum c =
  let xs = numeric_elements c in
  if List.for_all (function Int _ -> true | _ -> false) xs then
    Int (List.fold_left (fun acc v -> acc + to_int v) 0 xs)
  else Float (List.fold_left (fun acc v -> acc +. to_float v) 0.0 xs)

let agg_avg c =
  match numeric_elements c with
  | [] -> Null
  | xs ->
      let total = List.fold_left (fun acc v -> acc +. to_float v) 0.0 xs in
      Float (total /. float_of_int (List.length xs))

let extremum better c =
  match numeric_elements c with
  | [] -> Null
  | x :: xs ->
      List.fold_left
        (fun acc v ->
          match numeric_compare v acc with
          | Some cmp when better cmp -> v
          | _ -> acc)
        x xs

let agg_min c = extremum (fun cmp -> cmp < 0) c
let agg_max c = extremum (fun cmp -> cmp > 0) c

(* Naive like-matcher: % = any substring, _ = any char. Patterns are tiny
   schema-level strings, so backtracking cost is irrelevant. *)
let like_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  let rec go i j =
    if i = np then j = ns
    else
      match pattern.[i] with
      | '%' ->
          (* try every suffix *)
          let rec attempt k = k <= ns && (go (i + 1) k || attempt (k + 1)) in
          attempt j
      | '_' -> j < ns && go (i + 1) (j + 1)
      | c -> j < ns && s.[j] = c && go (i + 1) (j + 1)
  in
  go 0 0

let rec pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f ->
      (* Keep a '.' or exponent so the text re-lexes as a float. *)
      let s = Printf.sprintf "%.12g" f in
      if String.exists (fun c -> c = '.' || c = 'e' || c = 'n' || c = 'i') s
      then Fmt.string ppf s
      else Fmt.pf ppf "%s.0" s
  | String s -> Fmt.pf ppf "%S" s
  | Object { oid_id; oid_class } -> Fmt.pf ppf "<%s#%d>" oid_class oid_id
  | Struct fields ->
      Fmt.pf ppf "struct(%a)"
        (Fmt.list ~sep:(Fmt.any ", ") pp_field)
        fields
  | Bag xs -> pp_coll ppf "Bag" xs
  | Set xs -> pp_coll ppf "Set" xs
  | List xs -> pp_coll ppf "List" xs

and pp_field ppf (name, v) = Fmt.pf ppf "%s: %a" name pp v

and pp_coll ppf kind xs =
  Fmt.pf ppf "%s(%a)" kind (Fmt.list ~sep:(Fmt.any ", ") pp) xs

let to_string v = Fmt.str "%a" pp v
