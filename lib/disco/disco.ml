(** Umbrella module: one [open Disco] (or [Disco.Mediator....]) reaches
    the whole public API. Each alias re-exports the documented module of
    its subsystem library; see the per-module interfaces for the
    paper-section cross-references. *)

module Value = Disco_value.Value
module Lexer = Disco_lex.Lexer
module Schema = Disco_relation.Schema
module Table = Disco_relation.Table
module Database = Disco_relation.Database
module Sql = Disco_relation.Sql
module Clock = Disco_source.Clock
module Scheduler = Disco_source.Scheduler
module Schedule = Disco_source.Schedule
module Source = Disco_source.Source
module Datagen = Disco_source.Datagen
module Text_index = Disco_source.Text_index
module Shard = Disco_shard.Shard
module Otype = Disco_odl.Otype
module Typemap = Disco_odl.Typemap
module Registry = Disco_odl.Registry
module Odl = Disco_odl.Odl_parser
module Ast = Disco_oql.Ast
module Oql = Disco_oql.Parser
module Eval = Disco_oql.Eval
module Typecheck = Disco_oql.Typecheck
module Expr = Disco_algebra.Expr
module Compile = Disco_algebra.Compile
module Decompile = Disco_algebra.Decompile
module Rules = Disco_algebra.Rules
module Grammar = Disco_wrapper.Grammar
module Translate = Disco_wrapper.Translate
module Wrapper = Disco_wrapper.Wrapper
module Cost_model = Disco_cost.Cost_model
module Trace = Disco_obs.Trace
module Metrics = Disco_obs.Metrics
module Lru = Disco_cache.Lru
module Answer_cache = Disco_cache.Answer_cache
module Resubmission = Disco_cache.Resubmission
module Plan = Disco_physical.Plan
module Check = Disco_check.Check
module Optimizer = Disco_optimizer.Optimizer
module Runtime = Disco_runtime.Runtime
module Catalog = Disco_catalog.Catalog
module Mediator = Disco_core.Mediator
module Server = Disco_serve.Server
module Loadgen = Disco_serve.Loadgen
module Expand = Disco_core.Expand
module Maintenance = Disco_core.Maintenance
module Composition = Disco_core.Composition
