module Expr = Disco_algebra.Expr
module Plan = Disco_physical.Plan
module Shard = Disco_shard.Shard
module V = Disco_value.Value

(* -- constraint collection --

   A constraint is a (path, Shard.constr) pair in the namespace of the
   node currently being walked. Only shapes that certainly restrict the
   shard key are collected; everything else is ignored (the pass must
   never prune a shard that could hold an answer). *)

let rec conjuncts = function
  | Expr.And (a, b) -> conjuncts a @ conjuncts b
  | p -> [ p ]

let constr_of_cmp op c =
  match op with
  | Expr.Eq -> Some (Shard.Ceq c)
  | Expr.Lt -> Some (Shard.Clt c)
  | Expr.Le -> Some (Shard.Cle c)
  | Expr.Gt -> Some (Shard.Cgt c)
  | Expr.Ge -> Some (Shard.Cge c)
  | Expr.Ne | Expr.Like -> None

(* [Const c op Attr p] reads backwards: c < x means x > c. *)
let flip_cmp = function
  | Expr.Lt -> Expr.Gt
  | Expr.Le -> Expr.Ge
  | Expr.Gt -> Expr.Lt
  | Expr.Ge -> Expr.Le
  | (Expr.Eq | Expr.Ne | Expr.Like) as op -> op

let constraints_of_pred pred =
  List.filter_map
    (function
      | Expr.Cmp (op, Expr.Attr p, Expr.Const c) ->
          Option.map (fun k -> (p, k)) (constr_of_cmp op c)
      | Expr.Cmp (op, Expr.Const c, Expr.Attr p) ->
          Option.map (fun k -> (p, k)) (constr_of_cmp (flip_cmp op) c)
      | Expr.Member (Expr.Attr p, keys) when V.is_collection keys ->
          Some (p, Shard.Cin (V.elements keys))
      | _ -> None)
    (conjuncts pred)

(* Translate constraint paths through a [Map] head. A binding struct
   [struct(x: @elem)] turns [x.id] into [id]; an aliasing struct
   [struct(a: b)] turns [a.rest] into [b.rest]; [Hscalar (Attr p)]
   prefixes every path with [p]. Constraints on computed fields drop. *)
let translate_constrs head constrs =
  match head with
  | Expr.Hscalar (Expr.Attr p) ->
      Some (List.map (fun (q, k) -> (p @ q, k)) constrs)
  | Expr.Hscalar _ -> None
  | Expr.Hstruct fields ->
      if
        List.for_all
          (fun (_, s) -> match s with Expr.Attr _ -> true | _ -> false)
          fields
      then
        Some
          (List.filter_map
             (fun (path, k) ->
               match path with
               | f :: rest -> (
                   match List.assoc_opt f fields with
                   | Some (Expr.Attr p) -> Some (p @ rest, k)
                   | _ -> None)
               | [] -> None)
             constrs)
      else None

(* Per-shard-child key constraints, for the static analyzer: the same
   collection-and-translation walk as [prune], but instead of dropping
   excluded submits it reports, for every shard-child scan, the
   constraints that reached its shard key. An empty list for every scan
   of a partition means pruning can never fire on this expression. *)
let key_constraints ~shard expr =
  let acc = ref [] in
  let rec walk constrs e =
    match e with
    | Expr.Get name -> (
        match shard name with
        | None -> ()
        | Some (p, _) ->
            let ks =
              List.filter_map
                (fun (path, c) ->
                  if path = [ p.Shard.p_key ] then Some c else None)
                constrs
            in
            acc := (name, ks) :: !acc)
    | Expr.Data _ -> ()
    | Expr.Select (inner, pred) ->
        walk (constraints_of_pred pred @ constrs) inner
    | Expr.Map (inner, head) -> (
        match translate_constrs head constrs with
        | Some constrs' -> walk constrs' inner
        | None -> walk [] inner)
    | Expr.Project (inner, _) | Expr.Distinct inner | Expr.Submit (_, inner)
      ->
        walk constrs inner
    | Expr.Union es -> List.iter (walk constrs) es
    | Expr.Join (l, r, _) ->
        walk [] l;
        walk [] r
  in
  walk [] expr;
  List.rev !acc

let empty_bag = Expr.Data (V.Bag [])

let is_empty_bag = function
  | Expr.Data v -> ( try V.cardinal v = 0 with V.Type_error _ -> false)
  | _ -> false

let prune ?metrics ~shard located =
  let pruned = ref 0 and scanned = ref 0 in
  let changed = ref false in
  (* Does the constraint set exclude every row the submit could
     produce? The constraints live in the submit's *output* namespace,
     and pushdown can move a renaming [Map] inside the submit
     (rules.ml), so paths must be translated through the inner
     expression — the same walk the outer tree gets — before they may
     match a shard key. Conservative throughout: anything that cannot
     be translated certainly (computed heads, joins, constant data,
     non-shard extents) fails to exclude. *)
  let rec excluded constrs inner =
    match inner with
    | Expr.Get name -> (
        match shard name with
        | None -> false
        | Some (p, k) ->
            let key_constrs =
              List.filter_map
                (fun (path, c) ->
                  if path = [ p.Shard.p_key ] then Some c else None)
                constrs
            in
            key_constrs <> [] && not (Shard.admits p k key_constrs))
    | Expr.Data _ ->
        (* constant rows are not bounded by any shard's key range *)
        false
    | Expr.Select (e, pred) -> excluded (constraints_of_pred pred @ constrs) e
    | Expr.Map (e, head) -> (
        match translate_constrs head constrs with
        | Some constrs' -> excluded constrs' e
        | None -> excluded [] e)
    | Expr.Project (e, _) | Expr.Distinct e | Expr.Submit (_, e) ->
        excluded constrs e
    | Expr.Union es -> es <> [] && List.for_all (excluded constrs) es
    | Expr.Join _ ->
        (* join output merges both binding structs; no per-side
           translation is attempted *)
        false
  in
  let touches_shard inner =
    List.exists (fun name -> shard name <> None) (Expr.gets inner)
  in
  let rec walk constrs expr =
    match expr with
    | Expr.Submit (_, inner) when touches_shard inner ->
        if excluded constrs inner then (
          incr pruned;
          changed := true;
          empty_bag)
        else (
          incr scanned;
          expr)
    | Expr.Submit _ | Expr.Get _ | Expr.Data _ -> expr
    | Expr.Select (inner, pred) ->
        Expr.Select (walk (constraints_of_pred pred @ constrs) inner, pred)
    | Expr.Map (inner, head) -> (
        match translate_constrs head constrs with
        | Some constrs' -> Expr.Map (walk constrs' inner, head)
        | None -> Expr.Map (walk [] inner, head))
    | Expr.Project (inner, attrs) -> Expr.Project (walk constrs inner, attrs)
    | Expr.Distinct inner -> Expr.Distinct (walk constrs inner)
    | Expr.Union es -> (
        (* dropping empty members is sound for bag union *)
        match List.filter (fun e -> not (is_empty_bag e)) (List.map (walk constrs) es) with
        | [] -> empty_bag
        | [ single ] -> single
        | members -> Expr.Union members)
    | Expr.Join (l, r, pairs) ->
        (* join outputs merge both binding structs; translating paths
           into one side needs per-side field sets — reset instead *)
        Expr.Join (walk [] l, walk [] r, pairs)
  in
  let result = walk [] located in
  Option.iter
    (fun m ->
      if !pruned > 0 then Disco_obs.Metrics.incr ~by:!pruned m "shard.pruned";
      if !scanned > 0 then Disco_obs.Metrics.incr ~by:!scanned m "shard.scanned")
    metrics;
  if !changed then result else located

(* -- gather-step rewrite -- *)

let merge_rewrite ~shard plan =
  (* A union is the gather step of one hash-sharded scan only when its
     members partition the extent: each member is a chain of unary
     operators over a single [Exec] scanning exactly one shard child,
     every child belongs to the same hash partition, and no child is
     scanned by two members. The merge's dedup drops cross-branch
     duplicates, so any looser shape — a member scanning the whole
     extent, the same child in two branches, constant data, joins —
     could carry legitimately duplicated tuples of a bag union and must
     keep plain [Mk_union] semantics. *)
  let rec member_scans p =
    match p with
    | Plan.Exec (_, e) -> Some (List.sort_uniq String.compare (Expr.gets e))
    | Plan.Mk_select (q, _) | Plan.Mk_project (q, _) | Plan.Mk_map (q, _)
    | Plan.Mk_distinct q ->
        member_scans q
    | Plan.Mk_data _ | Plan.Nested_loop_join _ | Plan.Hash_join _
    | Plan.Merge_join _ | Plan.Semi_join _ | Plan.Mk_union _
    | Plan.Mk_shard_merge _ ->
        None
  in
  let hash_child name =
    match shard name with
    | Some (p, _) -> (
        match p.Shard.p_scheme with
        | Shard.Hash _ -> Some p
        | Shard.Range _ -> None)
    | None -> None
  in
  let member_child p =
    match member_scans p with
    | Some [ name ] ->
        Option.map (fun part -> (name, part)) (hash_child name)
    | Some _ | None -> None
  in
  let hash_sharded_family ps =
    match List.map member_child ps with
    | [] -> false
    | children ->
        List.for_all (fun c -> c <> None) children
        &&
        let children = List.filter_map Fun.id children in
        (match children with
        | (_, p0) :: rest -> List.for_all (fun (_, p) -> p = p0) rest
        | [] -> false)
        &&
        let names = List.map fst children in
        List.length (List.sort_uniq String.compare names) = List.length names
  in
  let rec go p =
    match p with
    | Plan.Exec _ | Plan.Mk_data _ -> p
    | Plan.Mk_select (q, pred) -> Plan.Mk_select (go q, pred)
    | Plan.Mk_project (q, attrs) -> Plan.Mk_project (go q, attrs)
    | Plan.Mk_map (q, h) -> Plan.Mk_map (go q, h)
    | Plan.Mk_distinct q -> Plan.Mk_distinct (go q)
    | Plan.Nested_loop_join (l, r, pairs) ->
        Plan.Nested_loop_join (go l, go r, pairs)
    | Plan.Hash_join (l, r, pairs) -> Plan.Hash_join (go l, go r, pairs)
    | Plan.Merge_join (l, r, pairs) -> Plan.Merge_join (go l, go r, pairs)
    | Plan.Semi_join (l, right, pairs) -> Plan.Semi_join (go l, right, pairs)
    | Plan.Mk_shard_merge ps -> Plan.Mk_shard_merge (List.map go ps)
    | Plan.Mk_union ps ->
        let ps = List.map go ps in
        if hash_sharded_family ps then Plan.Mk_shard_merge ps
        else Plan.Mk_union ps
  in
  go plan
