module Expr = Disco_algebra.Expr
module Rules = Disco_algebra.Rules
module Plan = Disco_physical.Plan
module Check = Disco_check.Check
module Cost_model = Disco_cost.Cost_model

let log_src = Logs.Src.create "disco.optimizer" ~doc:"Disco query optimizer"

module Log = (val Logs.src_log log_src)

type choice = {
  plan : Plan.plan;
  logical : Expr.expr;
  cost : Plan.cost;
  alternatives : int;
}

(* Enumerate join-commutation variants of an expression, breadth-first
   over the join nodes, capped at [limit] variants. *)
let join_variants ~limit e =
  let rec commute e =
    match e with
    | Expr.Join (l, r, pairs) ->
        let ls = commute l and rs = commute r in
        List.concat_map
          (fun l' ->
            List.concat_map
              (fun r' ->
                [
                  Expr.Join (l', r', pairs);
                  Expr.Join (r', l', List.map (fun (a, b) -> (b, a)) pairs);
                ])
              rs)
          ls
    | Expr.Select (inner, p) ->
        List.map (fun i -> Expr.Select (i, p)) (commute inner)
    | Expr.Map (inner, h) -> List.map (fun i -> Expr.Map (i, h)) (commute inner)
    | Expr.Project (inner, attrs) ->
        List.map (fun i -> Expr.Project (i, attrs)) (commute inner)
    | Expr.Distinct inner -> List.map (fun i -> Expr.Distinct i) (commute inner)
    | Expr.Union es ->
        (* unions multiply too fast; keep member order fixed *)
        [ Expr.Union es ]
    | Expr.Get _ | Expr.Data _ | Expr.Submit _ -> [ e ]
  in
  let variants = commute e in
  List.filteri (fun i _ -> i < limit) variants

(* Paper Section 3.3: when no cost information is available, "the
   optimizer will choose plans where the maximum amount of computation is
   done at the data source"; only then is the lowest mediator-side cost
   chosen. Candidates whose exec estimates are all defaults are compared
   by mediator work first; estimated times take over as soon as any
   recorded cost informs a candidate. *)
let better (a : Plan.cost * int * int) (b : Plan.cost * int * int) =
  let ca, opsa, pusheda = a and cb, opsb, pushedb = b in
  let informed c = c.Plan.defaulted_execs = 0 in
  match (informed ca, informed cb) with
  | true, false -> true
  | false, true ->
      (* a default-based estimate is optimistic fiction (time 0); never
         let it displace a plan whose cost is actually known *)
      false
  | true, true ->
      if ca.Plan.time_ms <> cb.Plan.time_ms then
        ca.Plan.time_ms < cb.Plan.time_ms
      else if ca.Plan.shipped <> cb.Plan.shipped then
        ca.Plan.shipped < cb.Plan.shipped
      else opsa < opsb
  | false, false ->
      (* the paper's default rule: maximum computation at the sources *)
      if opsa <> opsb then opsa < opsb
      else if ca.Plan.time_ms <> cb.Plan.time_ms then
        ca.Plan.time_ms < cb.Plan.time_ms
      else if ca.Plan.shipped <> cb.Plan.shipped then
        ca.Plan.shipped < cb.Plan.shipped
      else pusheda > pushedb

(* Run the static verifier over each implemented candidate. In [Warn]
   mode violations only feed metrics and the log; in [Enforce] mode
   failing candidates are dropped from the search space, and if nothing
   survives the error diagnostics of the first candidate are raised. *)
let verify_candidates ?metrics ~check candidates =
  match check with
  | None | Some (_, Check.Off) -> candidates
  | Some (checker, mode) -> (
      let verdicts =
        List.map
          (fun ((_, p) as cand) -> (cand, Check.check_plan checker p))
          candidates
      in
      let errs, warns =
        List.fold_left
          (fun (e, w) (_, ds) ->
            let ne = List.length (Check.errors ds) in
            (e + ne, w + (List.length ds - ne)))
          (0, 0) verdicts
      in
      Option.iter
        (fun m ->
          if errs > 0 then
            Disco_obs.Metrics.incr ~by:errs m "check.violations";
          if warns > 0 then
            Disco_obs.Metrics.incr ~by:warns m "check.warnings")
        metrics;
      List.iter
        (fun (_, ds) ->
          List.iter
            (fun d ->
              Log.debug (fun f -> f "%a" Check.pp_diag d))
            ds)
        verdicts;
      match mode with
      | Check.Enforce -> (
          match
            List.filter_map
              (fun (cand, ds) ->
                if Check.has_errors ds then None else Some cand)
              verdicts
          with
          | [] ->
              raise
                (Check.Check_error
                   (match verdicts with
                   | (_, ds) :: _ -> Check.errors ds
                   | [] -> []))
          | ok -> ok)
      | Check.Off | Check.Warn -> candidates)

let optimize ?params ?(max_join_variants = 8) ?metrics ?(batch = false) ?check
    ?shard ~can_push ~cost located =
  (* Partition pruning runs once, on the located tree, before any
     enumeration: every candidate then inherits the reduced scan set.
     With no shard resolver the tree passes through untouched. *)
  let located =
    match shard with
    | None -> located
    | Some f -> Shard_prune.prune ?metrics ~shard:f located
  in
  (* The gather step of a hash-sharded scan must deduplicate
     double-covered tuples; rewrite each implemented candidate. *)
  let shard_merge plan =
    match shard with
    | None -> plan
    | Some f -> Shard_prune.merge_rewrite ~shard:f plan
  in
  let on_rule =
    Option.map
      (fun m stage ->
        Disco_obs.Metrics.incr m "optimizer.rules_fired";
        Disco_obs.Metrics.incr m ("optimizer.rule." ^ stage))
      metrics
  in
  let enumerated =
    (* join commutations of the located tree ... *)
    located :: join_variants ~limit:max_join_variants located
    (* ... each at every pushdown level: capability-maximal, none, and
       as-written *)
    |> List.concat_map (fun v ->
           [
             Rules.normalize ~can_push ?on_rule v;
             Rules.normalize ~can_push:Rules.push_none ?on_rule v;
             v;
           ])
  in
  let candidates = List.sort_uniq compare enumerated in
  let informed repo expr =
    match (Cost_model.estimate cost ~repo expr).Cost_model.est_basis with
    | Cost_model.Default -> false
    | Cost_model.Exact _ | Cost_model.Close _ | Cost_model.Indexed -> true
  in
  let pushed_size p =
    List.fold_left
      (fun acc (_, e) -> acc + Expr.size e)
      0 (Plan.all_source_exprs p)
  in
  let per_candidate =
    List.map
      (fun logical ->
        match shard_merge (Plan.implement logical) with
        | plan ->
            (* also consider the alternative join algorithms (hash vs
               merge), and semijoin reductions where the cost model has
               real statistics for both sides *)
            ( logical,
              List.map
                (fun p -> (logical, p))
                ((plan :: Plan.join_algorithm_variants plan)
                @ Plan.semijoin_variants ~informed plan) )
        | exception Plan.Physical_error _ -> (logical, []))
      candidates
  in
  let implemented = List.concat_map snd per_candidate in
  (* The enumeration re-derives the same candidate along many paths: a
     pushdown level that rewrote nothing, a commutation that recreated
     the original order, two logicals implementing to one physical tree.
     Cost each distinct plan exactly once — keeping the first occurrence
     preserves the final choice, because [better] is strict and the
     selection fold keeps the earliest among equals. *)
  let unique =
    List.rev
      (List.fold_left
         (fun acc ((_, p) as cand) ->
           if List.exists (fun (_, p') -> p' = p) acc then acc
           else cand :: acc)
         [] implemented)
  in
  let unique = verify_candidates ?metrics ~check unique in
  let costed =
    List.map
      (fun (logical, p) ->
        ( logical,
          p,
          ( Plan.estimate ?params ~batch cost p,
            Plan.mediator_op_count p,
            pushed_size p ) ))
      unique
  in
  (* what the enumeration produced before any deduplication: duplicate
     logical candidates contribute their whole plan-variant list *)
  let raw_count =
    List.fold_left
      (fun acc l ->
        acc
        +
        match List.assoc_opt l per_candidate with
        | Some plans -> List.length plans
        | None -> 0)
      0 enumerated
  in
  Option.iter
    (fun m ->
      Disco_obs.Metrics.observe m "optimizer.candidates_raw"
        (float_of_int (max 1 raw_count));
      Disco_obs.Metrics.observe m "optimizer.candidates"
        (float_of_int (max 1 (List.length costed))))
    metrics;
  match costed with
  | [] ->
      (* fall back to the located expression itself (still verified) *)
      let plan = shard_merge (Plan.implement located) in
      ignore (verify_candidates ?metrics ~check [ (located, plan) ]);
      {
        plan;
        logical = located;
        cost = Plan.estimate ?params ~batch cost plan;
        alternatives = 1;
      }
  | first :: rest ->
      let best_logical, best_plan, (best_cost, _, _) =
        List.fold_left
          (fun (bl, bp, bc) (l, p, c) ->
            if better c bc then (l, p, c) else (bl, bp, bc))
          first rest
      in
      Log.debug (fun m ->
          m "chose plan (%.3f ms, %.1f shipped) out of %d candidates: %s"
            best_cost.Plan.time_ms best_cost.Plan.shipped (List.length costed)
            (Plan.to_string best_plan));
      {
        plan = best_plan;
        logical = best_logical;
        cost = best_cost;
        alternatives = List.length costed;
      }
