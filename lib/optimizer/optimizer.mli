(** The mediator query optimizer (paper Section 3.1).

    "The optimizer searches the space of logical and physical trees for
    the physical tree with the lowest cost": starting from a located
    logical expression, the search enumerates

    - pushdown alternatives — the capability-constrained normalization
      applied or not (and the un-normalized original), so a plan that
      ships whole extents competes with maximal pushdown;
    - join alternatives — commutations of every [Join] node (bounded),
      which choose hash-build sides and submit-merge opportunities;

    implements each candidate with the physical rules, costs it against
    the learned {!Disco_cost.Cost_model}, and keeps the cheapest.

    With an empty cost store every [exec] estimates at time 0 / data 1,
    so the maximal-pushdown plan wins — the paper's designed bias. *)

module Expr := Disco_algebra.Expr

type choice = {
  plan : Disco_physical.Plan.plan;
  logical : Expr.expr;  (** the logical tree the plan implements *)
  cost : Disco_physical.Plan.cost;
  alternatives : int;  (** number of candidates costed *)
}

val optimize :
  ?params:Disco_physical.Plan.params ->
  ?max_join_variants:int ->
  ?metrics:Disco_obs.Metrics.t ->
  ?batch:bool ->
  ?check:Disco_check.Check.t * Disco_check.Check.mode ->
  ?shard:(string -> (Disco_shard.Shard.partition * int) option) ->
  can_push:Disco_algebra.Rules.can_push ->
  cost:Disco_cost.Cost_model.t ->
  Expr.expr ->
  choice
(** [optimize ~can_push ~cost located] plans a located logical expression.
    [max_join_variants] bounds the commutation variants explored per
    candidate (default 8). Ties in estimated time break toward fewer
    shipped tuples, then smaller plans.

    Candidate plans are structurally deduplicated before costing (the
    enumeration re-derives the same physical tree along many paths), so
    each distinct plan is costed exactly once; the first occurrence is
    kept, which preserves the choice under the strict comparison.

    [batch] (default [false]) costs candidates for the batched transport
    — see {!Disco_physical.Plan.estimate}.

    When [metrics] is given, the search reports into it:
    [optimizer.rules_fired] / [optimizer.rule.<stage>] count each
    normalization stage that rewrote a candidate,
    [optimizer.candidates_raw] is a histogram of enumerated candidates
    per call, and [optimizer.candidates] of the distinct candidates
    actually costed.

    When [shard] is given (a resolver mapping shard-child extent names
    to their partition and index), {!Shard_prune.prune} runs once on the
    located tree before enumeration — shards the selection predicate
    excludes are never contacted — and {!Shard_prune.merge_rewrite}
    turns hash-sharded gather unions into deduplicating
    [Mk_shard_merge]s on every implemented candidate. Without [shard]
    both passes are skipped and plans are bit-for-bit what they were.

    When [check] is given, every distinct implemented candidate (and the
    no-candidate fallback plan) is run through the static verifier
    ({!Disco_check.Check.check_plan}). In [Warn] mode violations count
    into [check.violations] / [check.warnings] metrics; in [Enforce]
    mode candidates with error diagnostics are excluded from the search,
    and {!Disco_check.Check.Check_error} is raised if none survive. *)
