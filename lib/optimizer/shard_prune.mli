(** Partition pruning and scatter-gather rewriting for sharded extents.

    Expansion rewrites a partitioned extent into the union of its shard
    children, so a located query scans every shard. When a selection
    predicate fixes or bounds the shard key, whole shards provably hold
    no matching tuple; {!prune} replaces their [Submit]s with empty data
    before plan enumeration, so the scatter round only contacts shards
    that can answer ({!Disco_shard.Shard.admits} is conservative — a
    shard is dropped only when exclusion is certain).

    {!merge_rewrite} turns the gather step of a {e hash}-sharded scan
    from a plain bag union into {!Disco_physical.Plan.Mk_shard_merge},
    whose merge drops tuples an earlier shard already produced — two
    shards can double-cover a key range while a consistent-hash ring
    rebalance is in flight. *)

module Expr := Disco_algebra.Expr
module Plan := Disco_physical.Plan
module Shard := Disco_shard.Shard

val constraints_of_pred :
  Expr.pred -> (string list * Shard.constr) list
(** The certainly-restricting constraints among a predicate's top-level
    conjuncts: [(attribute path, constraint)] for each [Attr op Const]
    comparison (both orientations) and each constant [Member] filter.
    Shapes that cannot certainly restrict the shard key (disjunctions,
    [!=], [like], computed operands) are ignored — the same conservative
    collection {!prune} uses. *)

val key_constraints :
  shard:(string -> (Shard.partition * int) option) ->
  Expr.expr ->
  (string * Shard.constr list) list
(** For every shard-child scan in the expression, the constraints that
    reach its shard key after translation through renaming [Map] heads
    on both sides of the submit boundary — exactly the evidence {!prune}
    acts on, reported instead of acted on. One entry per scan, preorder;
    an empty constraint list for every scan of a partition means
    partition pruning can never fire on this expression. The static
    analyzer uses this to warn when a workload never constrains a
    declared shard key. *)

val prune :
  ?metrics:Disco_obs.Metrics.t ->
  shard:(string -> (Shard.partition * int) option) ->
  Expr.expr ->
  Expr.expr
(** [prune ~shard located] removes provably empty shard scans. [shard]
    maps an extent name to its partition and shard index when the name
    is a shard child ([None] otherwise — the pass then leaves its
    [Submit] alone). Collects top-level conjuncts of [Select]
    predicates, translates attribute paths through pure-renaming [Map]
    heads (binding structs and aliasing) on {e both} sides of the
    submit boundary — pushdown may have moved a renaming head inside
    the submit — and replaces a [Submit] whose rows provably all come
    from excluded shard children by [Data (Bag [])],
    then drops such empty members from enclosing [Union]s. Returns the
    input expression {e itself} when nothing prunes, so default-off
    behaviour is structurally unchanged. Metrics: [shard.pruned] /
    [shard.scanned] count shard-child submits dropped / kept. *)

val merge_rewrite :
  shard:(string -> (Shard.partition * int) option) -> Plan.plan -> Plan.plan
(** Rewrite a [Mk_union] that is the gather step of one {e
    hash}-partitioned extent into [Mk_shard_merge] (range shards cannot
    double-cover, so their plain union stands). A union qualifies only
    when its members partition the extent — each member is a chain of
    unary operators over a single [Exec] scanning exactly one shard
    child, all children belong to the same hash partition, and no child
    is scanned by two members. Anything looser (a member scanning the
    whole extent, the same child in two branches, constant data, joins)
    can carry legitimately duplicated tuples across branches, which the
    merge's dedup would drop, so it keeps bag-union semantics. Applied
    to each implemented candidate; returns the plan itself when nothing
    rewrites. *)
