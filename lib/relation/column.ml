module V = Disco_value.Value

type strings = {
  mutable codes : int array;
  mutable dict : string array;
  mutable dict_size : int;
  interned : (string, int) Hashtbl.t;
}

type payload =
  | Ints of int array
  | Floats of float array
  | Bools of Bytes.t
  | Strings of strings

type t = {
  mutable len : int;
  mutable nulls : Bytes.t;
  mutable payload : payload;
}

let initial_capacity = 16

let create ty =
  let payload =
    match ty with
    | Schema.TInt -> Ints (Array.make initial_capacity 0)
    | Schema.TFloat -> Floats (Array.make initial_capacity 0.0)
    | Schema.TBool -> Bools (Bytes.make initial_capacity '\000')
    | Schema.TString ->
        Strings
          {
            codes = Array.make initial_capacity (-1);
            dict = Array.make initial_capacity "";
            dict_size = 0;
            interned = Hashtbl.create 64;
          }
  in
  { len = 0; nulls = Bytes.make initial_capacity '\000'; payload }

let col_type t =
  match t.payload with
  | Ints _ -> Schema.TInt
  | Floats _ -> Schema.TFloat
  | Bools _ -> Schema.TBool
  | Strings _ -> Schema.TString

let length t = t.len

let grow_bytes b used =
  let b' = Bytes.make (2 * Bytes.length b) '\000' in
  Bytes.blit b 0 b' 0 used;
  b'

let grow_array a used fill =
  let a' = Array.make (2 * Array.length a) fill in
  Array.blit a 0 a' 0 used;
  a'

let ensure_capacity t =
  if t.len >= Bytes.length t.nulls then
    t.nulls <- grow_bytes t.nulls t.len;
  match t.payload with
  | Ints a when t.len >= Array.length a ->
      t.payload <- Ints (grow_array a t.len 0)
  | Floats a when t.len >= Array.length a ->
      t.payload <- Floats (grow_array a t.len 0.0)
  | Bools b when t.len >= Bytes.length b ->
      t.payload <- Bools (grow_bytes b t.len)
  | Strings s when t.len >= Array.length s.codes ->
      s.codes <- grow_array s.codes t.len (-1)
  | Ints _ | Floats _ | Bools _ | Strings _ -> ()

let intern s str =
  match Hashtbl.find_opt s.interned str with
  | Some code -> code
  | None ->
      let code = s.dict_size in
      if code >= Array.length s.dict then
        s.dict <- grow_array s.dict code "";
      s.dict.(code) <- str;
      s.dict_size <- code + 1;
      Hashtbl.add s.interned str code;
      code

let append t v =
  ensure_capacity t;
  let i = t.len in
  (match (t.payload, v) with
  | _, V.Null -> Bytes.set t.nulls i '\001'
  | Ints a, V.Int x -> a.(i) <- x
  | Floats a, V.Float x -> a.(i) <- x
  | Bools b, V.Bool x -> Bytes.set b i (if x then '\001' else '\000')
  | Strings s, V.String str -> s.codes.(i) <- intern s str
  | _ ->
      invalid_arg
        (Fmt.str "Column.append: %s into a %s column" (V.type_name v)
           (Schema.col_type_name (col_type t))));
  t.len <- i + 1

let is_null t i = Bytes.get t.nulls i = '\001'

let get t i =
  if is_null t i then V.Null
  else
    match t.payload with
    | Ints a -> V.Int a.(i)
    | Floats a -> V.Float a.(i)
    | Bools b -> V.Bool (Bytes.get b i = '\001')
    | Strings s -> V.String s.dict.(s.codes.(i))

let code_of_opt t str =
  match t.payload with
  | Strings s -> Hashtbl.find_opt s.interned str
  | Ints _ | Floats _ | Bools _ -> None

let dict_size t =
  match t.payload with
  | Strings s -> s.dict_size
  | Ints _ | Floats _ | Bools _ -> 0

let dict_entry t code =
  match t.payload with
  | Strings s ->
      if code < 0 || code >= s.dict_size then
        invalid_arg "Column.dict_entry: code out of range";
      s.dict.(code)
  | Ints _ | Floats _ | Bools _ ->
      invalid_arg "Column.dict_entry: not a string column"
