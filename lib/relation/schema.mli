(** Relational schemas: ordered, typed column lists.

    Data sources wrapped by Disco store flat relations; this module defines
    their schemas and checks value conformance. *)

(** Column types of the source-side relational engine. *)
type col_type = TInt | TFloat | TString | TBool

val col_type_name : col_type -> string
val col_type_of_string : string -> col_type option

val value_conforms : col_type -> Disco_value.Value.t -> bool
(** [Null] conforms to every column type. *)

type t = { columns : (string * col_type) list }
(** invariant: column names are unique; order is the storage order. *)

exception Schema_error of string

val make : (string * col_type) list -> t
(** Raises {!Schema_error} on duplicate column names. *)

val arity : t -> int
val column_names : t -> string list

val index_of : t -> string -> int
(** Position of a column. Raises {!Schema_error} if absent. *)

val index_of_opt : t -> string -> int option
val type_of : t -> string -> col_type option
val mem : t -> string -> bool

val check_row : t -> Disco_value.Value.t array -> unit
(** Raises {!Schema_error} if the row has the wrong arity or a value of the
    wrong type. *)

val row_to_struct : t -> Disco_value.Value.t array -> Disco_value.Value.t
(** View a row as an ODMG struct with the column names as fields. *)

val struct_to_row : t -> Disco_value.Value.t -> Disco_value.Value.t array
(** Inverse of {!row_to_struct}; missing fields become [Null]. Raises
    {!Schema_error} if the value is not a struct. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
