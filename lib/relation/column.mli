(** Typed growable column vectors — the storage cells of the columnar
    relation engine.

    Each column stores one attribute of a table as an unboxed array of its
    schema type plus a null byte-map. String columns are
    dictionary-encoded: rows hold [int] codes into a per-column dictionary,
    so equality between encoded strings is an integer comparison and a
    [LIKE] pattern needs evaluating only once per distinct string.

    The representation is exposed so the batch operators in {!Sql} can run
    typed kernels directly over the backing arrays. Only the first
    {!length} entries of a payload array are valid — the rest is growth
    capacity. Callers outside [lib/relation] should treat columns as
    opaque. *)

module V := Disco_value.Value

type strings = {
  mutable codes : int array;  (** row -> dictionary code; [-1] on NULL rows *)
  mutable dict : string array;  (** code -> string; first [dict_size] valid *)
  mutable dict_size : int;
  interned : (string, int) Hashtbl.t;  (** string -> code *)
}

type payload =
  | Ints of int array
  | Floats of float array
  | Bools of Bytes.t  (** ['\001'] where true *)
  | Strings of strings

type t = {
  mutable len : int;
  mutable nulls : Bytes.t;  (** ['\001'] where NULL; first [len] valid *)
  mutable payload : payload;
}

val create : Schema.col_type -> t
val col_type : t -> Schema.col_type
val length : t -> int

val append : t -> V.t -> unit
(** Append one value. The value must conform to the column type
    ({!Schema.value_conforms}) — the table checks before appending. *)

val get : t -> int -> V.t
(** Materialize row [i] back into a boxed value. *)

val is_null : t -> int -> bool

val code_of_opt : t -> string -> int option
(** Dictionary probe: the code for a string if this is a string column
    that has interned it. [None] means no stored row can equal it. *)

val dict_size : t -> int
(** Number of distinct strings interned; [0] for non-string columns. *)

val dict_entry : t -> int -> string
(** The string behind a dictionary code. *)
