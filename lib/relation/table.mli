(** A named in-memory relation: a schema plus a mutable row store. *)

type t

val create : name:string -> Schema.t -> t
val name : t -> string
val schema : t -> Schema.t

val insert : t -> Disco_value.Value.t array -> unit
(** Append a row. Raises {!Schema.Schema_error} if the row does not conform. *)

val insert_struct : t -> Disco_value.Value.t -> unit
(** Insert a row given as a struct (missing fields become [Null]). *)

val insert_all : t -> Disco_value.Value.t array list -> unit

val delete_where : t -> (Disco_value.Value.t array -> bool) -> int
(** Remove rows matching the predicate; returns the number removed. *)

val rows : t -> Disco_value.Value.t array list
(** Rows in insertion order. The arrays are owned by the table: do not
    mutate them. *)

val cardinality : t -> int

val to_bag : t -> Disco_value.Value.t
(** The table contents as a bag of structs — the extent view a wrapper
    presents to a mediator. *)

val version : t -> int
(** Monotone counter bumped by every mutation; used for plan-cache
    invalidation. *)

val pp : Format.formatter -> t -> unit
