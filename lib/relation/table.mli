(** A named in-memory relation: a schema plus a mutable columnar store.

    Rows are decomposed into per-column typed vectors ({!Column}) on
    insert and materialized back on demand; the row-oriented API below is
    a façade over that store, so wrappers and tests are unaffected by the
    storage layout. Optional secondary indexes ({!Index}) are declared
    per column and rebuilt lazily when the table version moves. *)

type t

val create : name:string -> Schema.t -> t
val name : t -> string
val schema : t -> Schema.t

val insert : t -> Disco_value.Value.t array -> unit
(** Append a row. Raises {!Schema.Schema_error} if the row does not conform. *)

val insert_struct : t -> Disco_value.Value.t -> unit
(** Insert a row given as a struct (missing fields become [Null]). *)

val insert_all : t -> Disco_value.Value.t array list -> unit
(** Bulk insert. Bumps {!version} once for the whole batch (not once per
    row), so one logical load invalidates data-version-keyed caches once.
    The empty batch is a no-op. *)

val delete_where : t -> (Disco_value.Value.t array -> bool) -> int
(** Remove rows matching the predicate; returns the number removed. *)

val rows : t -> Disco_value.Value.t array list
(** Rows in insertion order, materialized from the column store. *)

val cardinality : t -> int

val to_bag : t -> Disco_value.Value.t
(** The table contents as a bag of structs — the extent view a wrapper
    presents to a mediator. *)

val version : t -> int
(** Monotone counter bumped by every mutation; used for plan-cache
    invalidation. *)

(** {1 Secondary indexes} *)

val declare_index : t -> column:string -> Index.kind -> unit
(** Declare (or replace) an index on a column. Raises
    {!Schema.Schema_error} if the column is absent or the kind does not
    support its type ({!Index.kind_supported}). Declaring is DDL over
    access paths, not data: it does not bump {!version}, and without any
    declaration query results and timings are unchanged. *)

val drop_index : t -> string -> unit

val indexes : t -> (string * Index.kind) list
(** Declared indexes, sorted by column name. *)

val index_kind : t -> string -> Index.kind option

val index_for : t -> string -> Index.t option
(** The live index snapshot for a column, rebuilding lazily if the table
    changed since the last build. [None] when no index is declared.
    Engine-internal: used by {!Sql}'s columnar planner. *)

(** {1 Columnar internals} *)

val column_at : t -> int -> Column.t
(** The backing column vector at a schema position. Engine-internal:
    callers must not mutate through it. *)

val pp : Format.formatter -> t -> unit
