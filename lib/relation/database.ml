type t = {
  name : string;
  tables : (string, Table.t) Hashtbl.t;
  mutable ddl_ops : int;
}

let create ~name = { name; tables = Hashtbl.create 16; ddl_ops = 0 }
let name t = t.name

let schema_error fmt =
  Format.kasprintf (fun s -> raise (Schema.Schema_error s)) fmt

let create_table t ~name schema =
  if Hashtbl.mem t.tables name then
    schema_error "table %s already exists in database %s" name t.name;
  let table = Table.create ~name schema in
  Hashtbl.replace t.tables name table;
  t.ddl_ops <- t.ddl_ops + 1;
  table

let drop_table t name =
  Hashtbl.remove t.tables name;
  t.ddl_ops <- t.ddl_ops + 1

let find_table t name = Hashtbl.find_opt t.tables name

let get_table t name =
  match find_table t name with
  | Some table -> table
  | None -> schema_error "no table named %s in database %s" name t.name

let table_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.tables [] |> List.sort String.compare

let version t =
  Hashtbl.fold (fun _ table acc -> acc + Table.version table) t.tables t.ddl_ops

let pp ppf t =
  Fmt.pf ppf "database %s {%a}" t.name
    (Fmt.list ~sep:(Fmt.any "; ") Fmt.string)
    (table_names t)
