module V = Disco_value.Value

type kind = Hash | Sorted

let kind_name = function Hash -> "hash" | Sorted -> "sorted"

let kind_of_string s =
  match String.lowercase_ascii s with
  | "hash" -> Some Hash
  | "sorted" | "range" | "btree" -> Some Sorted
  | _ -> None

let kind_supported kind ty =
  match (kind, ty) with
  | Hash, _ -> true
  | Sorted, (Schema.TInt | Schema.TFloat) -> true
  | Sorted, (Schema.TString | Schema.TBool) -> false

type t =
  | Hash_index of {
      buckets : (int, int list) Hashtbl.t;  (* key -> row ids, ascending *)
      null_rows : int list;  (* ascending *)
    }
  | Sorted_index of int array
      (* row ids: NULLs first, then ascending by value, ties by row id *)

type op = Op_eq | Op_ne | Op_lt | Op_le | Op_gt | Op_ge

(* Distinct floats must get distinct keys except where [Float.compare]
   calls them equal: NaNs collapse to one bucket (all NaNs are equal under
   the total order), and [Int64.to_int]'s dropped sign bit only ever
   merges buckets, which the probe-side exact re-check undoes. *)
let float_key f =
  let f = if Float.is_nan f then Float.nan else f in
  Int64.to_int (Int64.bits_of_float f)

let max_exact_float_int = 4503599627370496.0 (* 2^52 *)

let build_hash col =
  let buckets = Hashtbl.create 1024 in
  let null_rows = ref [] in
  let n = Column.length col in
  let add key row =
    match Hashtbl.find_opt buckets key with
    | Some rows -> Hashtbl.replace buckets key (row :: rows)
    | None -> Hashtbl.replace buckets key [ row ]
  in
  let key_at =
    match col.Column.payload with
    | Column.Ints a -> fun i -> a.(i)
    | Column.Floats a -> fun i -> float_key a.(i)
    | Column.Bools b -> fun i -> if Bytes.get b i = '\001' then 1 else 0
    | Column.Strings s -> fun i -> s.codes.(i)
  in
  for i = n - 1 downto 0 do
    if Column.is_null col i then null_rows := i :: !null_rows
    else add (key_at i) i
  done;
  Hash_index { buckets; null_rows = !null_rows }

let build_sorted col =
  let n = Column.length col in
  let order = Array.init n Fun.id in
  let value_cmp =
    match col.Column.payload with
    | Column.Ints a -> fun r1 r2 -> Int.compare a.(r1) a.(r2)
    | Column.Floats a -> fun r1 r2 -> Float.compare a.(r1) a.(r2)
    | Column.Bools _ | Column.Strings _ ->
        invalid_arg "Index.build: sorted index requires a numeric column"
  in
  let cmp r1 r2 =
    match (Column.is_null col r1, Column.is_null col r2) with
    | true, true -> Int.compare r1 r2
    | true, false -> -1
    | false, true -> 1
    | false, false ->
        let c = value_cmp r1 r2 in
        if c <> 0 then c else Int.compare r1 r2
  in
  Array.sort cmp order;
  Sorted_index order

let build kind col =
  match kind with Hash -> build_hash col | Sorted -> build_sorted col

let sorted_of_list rows =
  (* already ascending by construction *)
  Array.of_list rows

let sort_rows a =
  Array.sort Int.compare a;
  a

(* -- hash lookups -- *)

let bucket_rows buckets key =
  match Hashtbl.find_opt buckets key with Some rows -> rows | None -> []

let hash_eq col buckets probe =
  (* Returns [None] when the probe cannot be mapped onto the key space. *)
  let exact_rows key = Some (sorted_of_list (bucket_rows buckets key)) in
  let float_rows f =
    let rows = bucket_rows buckets (float_key f) in
    let a =
      match col.Column.payload with
      | Column.Floats data ->
          List.filter (fun r -> Float.compare data.(r) f = 0) rows
      | _ -> rows
    in
    Some (sorted_of_list a)
  in
  match (col.Column.payload, probe) with
  | Column.Ints _, V.Int k -> exact_rows k
  | Column.Ints a, V.Float f ->
      (* equality is [Float.compare (float x) f = 0]; only exactly
         representable integral probes can be mapped back to an int key *)
      if not (Float.is_integer f) then Some [||]
      else if Float.abs f <= max_exact_float_int then (
        let k = int_of_float f in
        let rows = bucket_rows buckets k in
        let rows =
          List.filter (fun r -> Float.compare (float_of_int a.(r)) f = 0) rows
        in
        Some (sorted_of_list rows))
      else None
  | Column.Floats _, V.Float f -> float_rows f
  | Column.Floats _, V.Int k -> float_rows (float_of_int k)
  | Column.Strings _, V.String str -> (
      match Column.code_of_opt col str with
      | Some code -> exact_rows code
      | None -> Some [||])
  | Column.Bools _, V.Bool b -> exact_rows (if b then 1 else 0)
  | _ -> None

(* -- sorted lookups -- *)

(* First index in [order] where [f] holds; [f] must be monotone
   (false then true) along the sort order. *)
let bsearch order f =
  let lo = ref 0 and hi = ref (Array.length order) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if f order.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let sorted_lookup col order op probe =
  match probe with
  | V.Int _ | V.Float _ | V.Null ->
      let cmp r =
        match V.numeric_compare (Column.get col r) probe with
        | Some c -> c
        | None -> assert false (* numeric column, numeric/NULL probe *)
      in
      let n = Array.length order in
      let lower = bsearch order (fun r -> cmp r >= 0) in
      let upper = bsearch order (fun r -> cmp r > 0) in
      let slice lo hi = Array.sub order lo (hi - lo) in
      let rows =
        match op with
        | Op_eq -> slice lower upper
        | Op_ne -> Array.append (slice 0 lower) (slice upper n)
        | Op_lt -> slice 0 lower
        | Op_le -> slice 0 upper
        | Op_gt -> slice upper n
        | Op_ge -> slice lower n
      in
      Some (sort_rows rows)
  | _ -> None

let lookup t col op probe =
  match t with
  | Sorted_index order -> sorted_lookup col order op probe
  | Hash_index { buckets; null_rows } -> (
      match (op, probe) with
      | Op_eq, V.Null ->
          (* NULL = NULL holds (and only for NULL rows) *)
          Some (sorted_of_list null_rows)
      | Op_eq, _ -> hash_eq col buckets probe
      | _ -> None)
