(** A named collection of tables — the storage behind one repository. *)

type t

val create : name:string -> t
val name : t -> string

val create_table : t -> name:string -> Schema.t -> Table.t
(** Raises [Schema.Schema_error] if a table with that name exists. *)

val drop_table : t -> string -> unit
val find_table : t -> string -> Table.t option

val get_table : t -> string -> Table.t
(** Raises [Schema.Schema_error] if absent. *)

val table_names : t -> string list
(** Sorted. *)

val version : t -> int
(** Sum of all table versions plus a counter of DDL operations; monotone
    under any mutation. *)

val pp : Format.formatter -> t -> unit
