module V = Disco_value.Value

type t = {
  name : string;
  schema : Schema.t;
  mutable stored : V.t array list;  (* reverse insertion order *)
  mutable count : int;
  mutable version : int;
}

let create ~name schema = { name; schema; stored = []; count = 0; version = 0 }
let name t = t.name
let schema t = t.schema

let insert t row =
  Schema.check_row t.schema row;
  t.stored <- row :: t.stored;
  t.count <- t.count + 1;
  t.version <- t.version + 1

let insert_struct t v = insert t (Schema.struct_to_row t.schema v)
let insert_all t rows = List.iter (insert t) rows

let delete_where t pred =
  let keep, drop = List.partition (fun row -> not (pred row)) t.stored in
  let removed = List.length drop in
  if removed > 0 then (
    t.stored <- keep;
    t.count <- t.count - removed;
    t.version <- t.version + 1);
  removed

let rows t = List.rev t.stored
let cardinality t = t.count
let to_bag t = V.bag (List.map (Schema.row_to_struct t.schema) t.stored)
let version t = t.version

let pp ppf t =
  Fmt.pf ppf "table %s%a [%d rows]" t.name Schema.pp t.schema t.count
