module V = Disco_value.Value

type index_state = {
  ix_kind : Index.kind;
  mutable ix : Index.t option;
  mutable ix_version : int;  (* table version the snapshot was built at *)
}

type t = {
  name : string;
  schema : Schema.t;
  mutable columns : Column.t array;
  mutable count : int;
  mutable version : int;
  indexes : (string, index_state) Hashtbl.t;  (* column name -> state *)
}

let columns_of_schema schema =
  Array.of_list (List.map (fun (_, ty) -> Column.create ty) schema.Schema.columns)

let create ~name schema =
  {
    name;
    schema;
    columns = columns_of_schema schema;
    count = 0;
    version = 0;
    indexes = Hashtbl.create 4;
  }

let name t = t.name
let schema t = t.schema

let append_row t row =
  Schema.check_row t.schema row;
  Array.iteri (fun i col -> Column.append col row.(i)) t.columns;
  t.count <- t.count + 1

let insert t row =
  append_row t row;
  t.version <- t.version + 1

let insert_struct t v = insert t (Schema.struct_to_row t.schema v)

let insert_all t rows =
  (* One logical load, one version bump: bulk loads must not churn
     data-version-keyed caches once per row. *)
  match rows with
  | [] -> ()
  | rows ->
      t.version <- t.version + 1;
      List.iter (append_row t) rows

let arity t = Array.length t.columns

let row_at t i =
  Array.init (arity t) (fun c -> Column.get t.columns.(c) i)

let rows t = List.init t.count (row_at t)

let delete_where t pred =
  let removed = ref 0 in
  let kept = ref [] in
  for i = t.count - 1 downto 0 do
    let row = row_at t i in
    if pred row then incr removed else kept := row :: !kept
  done;
  if !removed > 0 then (
    let columns = columns_of_schema t.schema in
    List.iter
      (fun row -> Array.iteri (fun c col -> Column.append col row.(c)) columns)
      !kept;
    t.columns <- columns;
    t.count <- t.count - !removed;
    t.version <- t.version + 1);
  !removed

let cardinality t = t.count

let to_bag t =
  V.bag (List.init t.count (fun i -> Schema.row_to_struct t.schema (row_at t i)))

let version t = t.version

(* -- columnar internals -- *)

let column_at t i = t.columns.(i)

(* -- secondary indexes -- *)

let schema_error fmt =
  Format.kasprintf (fun s -> raise (Schema.Schema_error s)) fmt

let declare_index t ~column kind =
  let ty =
    match Schema.type_of t.schema column with
    | Some ty -> ty
    | None -> schema_error "no column named %s in table %s" column t.name
  in
  if not (Index.kind_supported kind ty) then
    schema_error "%s index on %s.%s: unsupported for column type %s"
      (Index.kind_name kind) t.name column
      (Schema.col_type_name ty);
  Hashtbl.replace t.indexes column
    { ix_kind = kind; ix = None; ix_version = -1 }

let drop_index t column = Hashtbl.remove t.indexes column

let indexes t =
  Hashtbl.fold (fun col st acc -> (col, st.ix_kind) :: acc) t.indexes []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let index_kind t column =
  Option.map (fun st -> st.ix_kind) (Hashtbl.find_opt t.indexes column)

let index_for t column =
  match Hashtbl.find_opt t.indexes column with
  | None -> None
  | Some st ->
      (match st.ix with
      | Some _ when st.ix_version = t.version -> ()
      | _ ->
          let col = t.columns.(Schema.index_of t.schema column) in
          st.ix <- Some (Index.build st.ix_kind col);
          st.ix_version <- t.version);
      st.ix

let pp ppf t =
  Fmt.pf ppf "table %s%a [%d rows]" t.name Schema.pp t.schema t.count
