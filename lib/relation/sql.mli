(** The native query language of relational data sources.

    Wrappers with SQL capability translate Disco logical expressions into
    this dialect (paper Section 1.1: "Wrappers map from a subset of a
    general query language, used by the mediators, to the particular query
    language of the data source"). The dialect supports single-block
    [SELECT [DISTINCT] items FROM tables [WHERE pred] [ORDER BY ...]
    [LIMIT n]] queries with arithmetic, comparisons and boolean
    connectives. *)

type scalar =
  | Col of string option * string
      (** column reference, optionally qualified by a table alias *)
  | Lit of Disco_value.Value.t  (** only atoms: null/bool/int/float/string *)
  | Arith of arith_op * scalar * scalar

and arith_op = Add | Sub | Mul | Div | Mod

type cmp = Eq | Ne | Lt | Le | Gt | Ge | Like

type pred =
  | True
  | Cmp of cmp * scalar * scalar
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type item =
  | Star  (** [SELECT *] *)
  | Item of scalar * string option  (** expression with optional [AS] alias *)

type query = {
  distinct : bool;
  items : item list;
  from : (string * string option) list;  (** table name, optional alias *)
  where : pred;
  order_by : (scalar * [ `Asc | `Desc ]) list;
  limit : int option;
}

val select : ?distinct:bool -> ?where:pred -> ?order_by:(scalar * [ `Asc | `Desc ]) list -> ?limit:int -> item list -> (string * string option) list -> query
(** Convenience constructor; [where] defaults to {!True}. *)

val pp_query : Format.formatter -> query -> unit
(** Prints standard SQL text. *)

val to_string : query -> string

val parse : string -> query
(** Parses the dialect. Raises [Disco_lex.Lexer.Error] on malformed
    input. *)

(** {1 Results} *)

type result = { columns : string list; rows : Disco_value.Value.t array list }

val result_to_bag : result -> Disco_value.Value.t
(** Rows as a bag of structs keyed by the result column names. *)

val pp_result : Format.formatter -> result -> unit

(** {1 Execution} *)

exception Sql_error of string

val run : Database.t -> query -> result
(** Evaluate a query against a database. Raises {!Sql_error} on unknown
    tables or columns, ambiguous references, or type errors in
    predicates.

    Single-table queries and two-table equi-joins run on the columnar
    engine: batch predicate kernels over the tables' column vectors,
    dictionary-coded string comparisons, hash joins, and any declared
    {!Table.declare_index} access paths. Other shapes fall back to
    {!run_rows}. The engines agree bag-for-bag on results, and a query
    that raises in one raises in the other (messages may differ when
    several rows independently raise — discovery order is the engine's
    own). *)

val run_rows : Database.t -> query -> result
(** The reference row-at-a-time interpreter (the pre-columnar engine).
    Kept as the oracle for equivalence tests and as the fallback for
    query shapes the columnar planner does not cover. *)

val explain_engine :
  Database.t ->
  query ->
  [ `Rows | `Columnar | `Columnar_indexed of string | `Columnar_join ]
(** Which engine {!run} would use, without executing the data-flow
    ([`Columnar_indexed c] names the column whose index serves the
    probe). Raises like {!run} on FROM-clause errors. *)

val run_string : Database.t -> string -> result
(** [run_string db sql] = [run db (parse sql)]. *)
