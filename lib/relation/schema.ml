module V = Disco_value.Value

type col_type = TInt | TFloat | TString | TBool

let col_type_name = function
  | TInt -> "int"
  | TFloat -> "float"
  | TString -> "string"
  | TBool -> "bool"

let col_type_of_string s =
  match String.lowercase_ascii s with
  | "int" | "integer" | "short" | "long" -> Some TInt
  | "float" | "double" | "real" -> Some TFloat
  | "string" | "text" | "varchar" -> Some TString
  | "bool" | "boolean" -> Some TBool
  | _ -> None

let value_conforms ty v =
  match (ty, v) with
  | _, V.Null -> true
  | TInt, V.Int _ -> true
  | TFloat, V.Float _ -> true
  | TString, V.String _ -> true
  | TBool, V.Bool _ -> true
  | _ -> false

type t = { columns : (string * col_type) list }

exception Schema_error of string

let schema_error fmt = Format.kasprintf (fun s -> raise (Schema_error s)) fmt

let make columns =
  let names = List.map fst columns in
  let sorted = List.sort String.compare names in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if String.equal a b then schema_error "duplicate column %s" a
        else check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  { columns }

let arity t = List.length t.columns
let column_names t = List.map fst t.columns

let index_of_opt t name =
  let rec go i = function
    | [] -> None
    | (n, _) :: rest -> if String.equal n name then Some i else go (i + 1) rest
  in
  go 0 t.columns

let index_of t name =
  match index_of_opt t name with
  | Some i -> i
  | None -> schema_error "no column named %s" name

let type_of t name = List.assoc_opt name t.columns
let mem t name = index_of_opt t name <> None

let check_row t row =
  if Array.length row <> arity t then
    schema_error "row arity %d does not match schema arity %d"
      (Array.length row) (arity t);
  List.iteri
    (fun i (name, ty) ->
      if not (value_conforms ty row.(i)) then
        schema_error "value %s does not conform to column %s : %s"
          (V.to_string row.(i)) name (col_type_name ty))
    t.columns

let row_to_struct t row =
  V.strct (List.mapi (fun i (name, _) -> (name, row.(i))) t.columns)

let struct_to_row t v =
  match v with
  | V.Struct fields ->
      Array.of_list
        (List.map
           (fun (name, _) ->
             match List.assoc_opt name fields with
             | Some x -> x
             | None -> V.Null)
           t.columns)
  | other -> schema_error "expected a struct, got %s" (V.type_name other)

let pp ppf t =
  let pp_col ppf (name, ty) = Fmt.pf ppf "%s: %s" name (col_type_name ty) in
  Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any ", ") pp_col) t.columns

let equal a b =
  List.length a.columns = List.length b.columns
  && List.for_all2
       (fun (n1, t1) (n2, t2) -> String.equal n1 n2 && t1 = t2)
       a.columns b.columns
