module V = Disco_value.Value
module Lexer = Disco_lex.Lexer
module Stream = Disco_lex.Lexer.Stream

type scalar =
  | Col of string option * string
  | Lit of V.t
  | Arith of arith_op * scalar * scalar

and arith_op = Add | Sub | Mul | Div | Mod

type cmp = Eq | Ne | Lt | Le | Gt | Ge | Like

type pred =
  | True
  | Cmp of cmp * scalar * scalar
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type item = Star | Item of scalar * string option

type query = {
  distinct : bool;
  items : item list;
  from : (string * string option) list;
  where : pred;
  order_by : (scalar * [ `Asc | `Desc ]) list;
  limit : int option;
}

let select ?(distinct = false) ?(where = True) ?(order_by = []) ?limit items
    from =
  { distinct; items; from; where; order_by; limit }

(* -- printing -- *)

let arith_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"

let cmp_symbol = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Like -> "LIKE"

let pp_lit ppf = function
  | V.Null -> Fmt.string ppf "NULL"
  | V.Bool true -> Fmt.string ppf "TRUE"
  | V.Bool false -> Fmt.string ppf "FALSE"
  | V.Int i -> Fmt.int ppf i
  | V.Float f -> Fmt.pf ppf "%.12g" f
  | V.String s ->
      (* Backslash-escape quotes and backslashes: the lexer reads [\c] as
         [c], so this round-trips — SQL-style [''] doubling does not (the
         lexer reads it as two adjacent string tokens), which used to break
         LIKE patterns and any quoted quote. *)
      let buf = Buffer.create (String.length s + 2) in
      Buffer.add_char buf '\'';
      String.iter
        (fun c ->
          (match c with
          | '\'' | '\\' -> Buffer.add_char buf '\\'
          | _ -> ());
          Buffer.add_char buf c)
        s;
      Buffer.add_char buf '\'';
      Fmt.string ppf (Buffer.contents buf)
  | v -> invalid_arg ("non-atomic SQL literal: " ^ V.type_name v)

let rec pp_scalar ppf = function
  | Col (None, c) -> Fmt.string ppf c
  | Col (Some t, c) -> Fmt.pf ppf "%s.%s" t c
  | Lit v -> pp_lit ppf v
  | Arith (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" pp_scalar a (arith_symbol op) pp_scalar b

let rec pp_pred ppf = function
  | True -> Fmt.string ppf "TRUE"
  | Cmp (op, a, b) -> Fmt.pf ppf "%a %s %a" pp_scalar a (cmp_symbol op) pp_scalar b
  | And (a, b) -> Fmt.pf ppf "(%a AND %a)" pp_pred a pp_pred b
  | Or (a, b) -> Fmt.pf ppf "(%a OR %a)" pp_pred a pp_pred b
  | Not a -> Fmt.pf ppf "NOT (%a)" pp_pred a

let pp_item ppf = function
  | Star -> Fmt.string ppf "*"
  | Item (s, None) -> pp_scalar ppf s
  | Item (s, Some a) -> Fmt.pf ppf "%a AS %s" pp_scalar s a

let pp_from ppf (table, alias) =
  match alias with
  | None -> Fmt.string ppf table
  | Some a -> Fmt.pf ppf "%s %s" table a

let pp_query ppf q =
  Fmt.pf ppf "SELECT %s%a FROM %a"
    (if q.distinct then "DISTINCT " else "")
    (Fmt.list ~sep:(Fmt.any ", ") pp_item)
    q.items
    (Fmt.list ~sep:(Fmt.any ", ") pp_from)
    q.from;
  (match q.where with
  | True -> ()
  | p -> Fmt.pf ppf " WHERE %a" pp_pred p);
  (match q.order_by with
  | [] -> ()
  | obs ->
      let pp_ob ppf (s, dir) =
        Fmt.pf ppf "%a %s" pp_scalar s
          (match dir with `Asc -> "ASC" | `Desc -> "DESC")
      in
      Fmt.pf ppf " ORDER BY %a" (Fmt.list ~sep:(Fmt.any ", ") pp_ob) obs);
  match q.limit with None -> () | Some n -> Fmt.pf ppf " LIMIT %d" n

let to_string q = Fmt.str "%a" pp_query q

(* -- parsing -- *)

let puncts =
  [ "<="; ">="; "<>"; "!="; "="; "<"; ">"; "("; ")"; ","; "."; "+"; "-"; "*"; "/"; "%" ]

let rec parse_scalar s = parse_additive s

and parse_additive s =
  let left = parse_multiplicative s in
  if Stream.try_punct s "+" then Arith (Add, left, parse_additive s)
  else if Stream.try_punct s "-" then
    (* left-associate subtraction chains *)
    let rec chain acc =
      let right = parse_multiplicative s in
      let acc = Arith (Sub, acc, right) in
      if Stream.try_punct s "-" then chain acc
      else if Stream.try_punct s "+" then Arith (Add, acc, parse_additive s)
      else acc
    in
    chain left
  else left

and parse_multiplicative s =
  let left = parse_atom s in
  if Stream.try_punct s "*" then Arith (Mul, left, parse_multiplicative s)
  else if Stream.try_punct s "/" then Arith (Div, left, parse_multiplicative s)
  else if Stream.try_punct s "%" then Arith (Mod, left, parse_multiplicative s)
  else left

and parse_atom s =
  match Stream.peek s with
  | Some (Lexer.Int i) ->
      ignore (Stream.next s);
      Lit (V.Int i)
  | Some (Lexer.Float f) ->
      ignore (Stream.next s);
      Lit (V.Float f)
  | Some (Lexer.Str str) ->
      ignore (Stream.next s);
      Lit (V.String str)
  | Some (Lexer.Punct "(") ->
      ignore (Stream.next s);
      let e = parse_scalar s in
      Stream.eat_punct s ")";
      e
  | Some (Lexer.Punct "-") -> (
      ignore (Stream.next s);
      (* A negative literal parses as a literal, so [Lit (Int (-5))]
         round-trips through the printer instead of reparsing as
         [0 - 5]. Prefix minus on anything else stays arithmetic. *)
      match Stream.peek s with
      | Some (Lexer.Int i) ->
          ignore (Stream.next s);
          Lit (V.Int (-i))
      | Some (Lexer.Float f) ->
          ignore (Stream.next s);
          Lit (V.Float (-.f))
      | _ -> Arith (Sub, Lit (V.Int 0), parse_atom s))
  | Some (Lexer.Ident id) when String.lowercase_ascii id = "null" ->
      ignore (Stream.next s);
      Lit V.Null
  | Some (Lexer.Ident id) when String.lowercase_ascii id = "true" ->
      ignore (Stream.next s);
      Lit (V.Bool true)
  | Some (Lexer.Ident id) when String.lowercase_ascii id = "false" ->
      ignore (Stream.next s);
      Lit (V.Bool false)
  | Some (Lexer.Ident _) ->
      let first = Stream.ident s in
      if Stream.try_punct s "." then Col (Some first, Stream.ident s)
      else Col (None, first)
  | _ -> Stream.failf s "expected a scalar expression"

let parse_cmp_op s =
  if Stream.try_kw s "like" then Like
  else if Stream.try_punct s "=" then Eq
  else if Stream.try_punct s "<>" then Ne
  else if Stream.try_punct s "!=" then Ne
  else if Stream.try_punct s "<=" then Le
  else if Stream.try_punct s ">=" then Ge
  else if Stream.try_punct s "<" then Lt
  else if Stream.try_punct s ">" then Gt
  else Stream.failf s "expected a comparison operator"

let rec parse_pred s = parse_or s

and parse_or s =
  let left = parse_and s in
  if Stream.try_kw s "or" then Or (left, parse_or s) else left

and parse_and s =
  let left = parse_not s in
  if Stream.try_kw s "and" then And (left, parse_and s) else left

and parse_not s =
  if Stream.try_kw s "not" then Not (parse_not s) else parse_pred_atom s

and parse_pred_atom s =
  let comparison s =
    let left = parse_scalar s in
    let op = parse_cmp_op s in
    let right = parse_scalar s in
    Cmp (op, left, right)
  in
  if Stream.peek_punct s "(" then (
    (* "(" opens either a parenthesized predicate or a parenthesized
       scalar that begins a comparison; try the predicate reading and
       backtrack on failure. *)
    let saved = Stream.save s in
    match
      (try
         Stream.eat_punct s "(";
         let inner = parse_pred s in
         Stream.eat_punct s ")";
         Some inner
       with Lexer.Error _ -> None)
    with
    | Some inner -> inner
    | None ->
        Stream.restore s saved;
        comparison s)
  else if Stream.try_kw s "true" then True
  else comparison s

let parse_item s =
  if Stream.try_punct s "*" then Star
  else
    let e = parse_scalar s in
    if Stream.try_kw s "as" then Item (e, Some (Stream.ident s))
    else Item (e, None)

let reserved =
  [ "from"; "where"; "order"; "limit"; "group"; "as"; "and"; "or"; "not"; "asc"; "desc" ]

let parse_from_entry s =
  let table = Stream.ident s in
  match Stream.peek s with
  | Some (Lexer.Ident id)
    when not (List.mem (String.lowercase_ascii id) reserved) ->
      ignore (Stream.next s);
      (table, Some id)
  | _ -> (table, None)

let rec parse_comma_list s elem =
  let first = elem s in
  if Stream.try_punct s "," then first :: parse_comma_list s elem else [ first ]

let parse_query s =
  Stream.eat_kw s "select";
  let distinct = Stream.try_kw s "distinct" in
  let items = parse_comma_list s parse_item in
  Stream.eat_kw s "from";
  let from = parse_comma_list s parse_from_entry in
  let where = if Stream.try_kw s "where" then parse_pred s else True in
  let order_by =
    if Stream.try_kw s "order" then (
      Stream.eat_kw s "by";
      parse_comma_list s (fun s ->
          let e = parse_scalar s in
          let dir =
            if Stream.try_kw s "desc" then `Desc
            else (
              ignore (Stream.try_kw s "asc");
              `Asc)
          in
          (e, dir)))
    else []
  in
  let limit =
    if Stream.try_kw s "limit" then
      match Stream.next s with
      | Lexer.Int n -> Some n
      | t -> Stream.failf s "expected an integer limit, found %s" (Lexer.token_to_string t)
    else None
  in
  { distinct; items; from; where; order_by; limit }

let parse input =
  let s = Stream.of_string ~puncts input in
  let q = parse_query s in
  ignore (Stream.try_punct s ";");
  Stream.expect_end s;
  q

(* -- results -- *)

type result = { columns : string list; rows : V.t array list }

let result_to_bag r =
  V.bag
    (List.map
       (fun row -> V.strct (List.mapi (fun i c -> (c, row.(i))) r.columns))
       r.rows)

let pp_result ppf r =
  Fmt.pf ppf "%a@\n" (Fmt.list ~sep:(Fmt.any " | ") Fmt.string) r.columns;
  List.iter
    (fun row ->
      Fmt.pf ppf "%a@\n"
        (Fmt.array ~sep:(Fmt.any " | ") V.pp)
        row)
    r.rows

(* -- evaluation -- *)

exception Sql_error of string

let sql_error fmt = Format.kasprintf (fun s -> raise (Sql_error s)) fmt

(* A binding environment: one (alias, schema, row) frame per FROM entry. *)
type frame = { alias : string; schema : Schema.t; mutable row : V.t array }

let lookup_col frames qualifier column =
  let candidates =
    List.filter
      (fun f ->
        (match qualifier with
        | Some q -> String.equal q f.alias
        | None -> true)
        && Schema.mem f.schema column)
      frames
  in
  match candidates with
  | [ f ] -> (f, Schema.index_of f.schema column)
  | [] ->
      sql_error "unknown column %s%s"
        (match qualifier with Some q -> q ^ "." | None -> "")
        column
  | _ -> sql_error "ambiguous column %s" column

let numeric_arith op a b =
  match (op, a, b) with
  | _, V.Null, _ | _, _, V.Null -> V.Null
  | Add, V.Int x, V.Int y -> V.Int (x + y)
  | Sub, V.Int x, V.Int y -> V.Int (x - y)
  | Mul, V.Int x, V.Int y -> V.Int (x * y)
  | Div, V.Int x, V.Int y ->
      if y = 0 then sql_error "division by zero" else V.Int (x / y)
  | Mod, V.Int x, V.Int y ->
      if y = 0 then sql_error "modulo by zero" else V.Int (x mod y)
  | Mod, _, _ -> sql_error "modulo requires integers"
  | _, (V.Int _ | V.Float _), (V.Int _ | V.Float _) ->
      let x = V.to_float a and y = V.to_float b in
      V.Float
        (match op with
        | Add -> x +. y
        | Sub -> x -. y
        | Mul -> x *. y
        | Div -> if y = 0.0 then sql_error "division by zero" else x /. y
        | Mod -> assert false)
  | Add, V.String x, V.String y -> V.String (x ^ y)
  | _ ->
      sql_error "arithmetic on non-numeric values %s and %s" (V.type_name a)
        (V.type_name b)

let rec eval_scalar frames = function
  | Lit v -> v
  | Col (q, c) ->
      let f, i = lookup_col frames q c in
      f.row.(i)
  | Arith (op, a, b) ->
      numeric_arith op (eval_scalar frames a) (eval_scalar frames b)

let eval_cmp op a b =
  (* SQL three-valued logic collapsed to two values: comparisons against
     NULL are false (except NULL = NULL, used by wrappers for missing
     data joins). *)
  match op with
  | Like -> (
      match (a, b) with
      | V.String s, V.String pattern -> V.like_match ~pattern s
      | V.Null, _ | _, V.Null -> false
      | _ -> sql_error "LIKE requires strings")
  | _ ->
  match V.numeric_compare a b with
  | None -> sql_error "type mismatch comparing %s and %s" (V.type_name a) (V.type_name b)
  | Some c -> (
      match op with
      | Eq -> c = 0
      | Ne -> c <> 0
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0
      | Like -> assert false)

let rec eval_pred frames = function
  | True -> true
  | Cmp (op, a, b) -> eval_cmp op (eval_scalar frames a) (eval_scalar frames b)
  | And (a, b) -> eval_pred frames a && eval_pred frames b
  | Or (a, b) -> eval_pred frames a || eval_pred frames b
  | Not a -> not (eval_pred frames a)

let scalar_output_name = function
  | Col (_, c) -> c
  | Lit _ -> "literal"
  | Arith _ -> "expr"

(* Shared between the row and columnar engines: * expansion, output
   column naming, and the DISTINCT / ORDER BY / LIMIT tail. Sharing the
   tail is what keeps the engines' answers identical row-for-row. *)

let expand_items alias_schemas items =
  List.concat_map
    (function
      | Star ->
          List.concat_map
            (fun (alias, schema) ->
              List.map
                (fun c -> Item (Col (Some alias, c), Some c))
                (Schema.column_names schema))
            alias_schemas
      | Item _ as it -> [ it ])
    items

let output_columns items =
  List.map
    (function
      | Item (s, Some a) ->
          ignore s;
          a
      | Item (s, None) -> scalar_output_name s
      | Star -> assert false)
    items

let finalize q columns rows =
  let rows =
    if q.distinct then
      List.sort_uniq
        (fun a b ->
          V.compare (V.List (Array.to_list a)) (V.List (Array.to_list b)))
        rows
    else rows
  in
  let rows =
    match q.order_by with
    | [] -> rows
    | order_by ->
        (* Order-by keys are evaluated against the *output* row when the
           scalar is a bare output column, else against the input frames
           (already consumed); we support output-column ordering, which is
           what the wrappers generate. *)
        let key_indices =
          List.map
            (fun (s, dir) ->
              match s with
              | Col (None, c) -> (
                  match
                    List.find_index (fun col -> String.equal col c) columns
                  with
                  | Some i -> (i, dir)
                  | None -> sql_error "ORDER BY column %s not in select list" c)
              | _ -> sql_error "ORDER BY supports plain output columns only")
            order_by
        in
        let cmp_rows a b =
          let rec go = function
            | [] -> 0
            | (i, dir) :: rest ->
                let c = V.compare a.(i) b.(i) in
                let c = match dir with `Asc -> c | `Desc -> -c in
                if c <> 0 then c else go rest
          in
          go key_indices
        in
        List.stable_sort cmp_rows rows
  in
  let rows =
    match q.limit with
    | None -> rows
    | Some n -> List.filteri (fun i _ -> i < n) rows
  in
  { columns; rows }

(* -- row-at-a-time engine --

   The original tuple-at-a-time interpreter, retained verbatim as the
   reference semantics: the columnar engine must agree with it bag-for-bag
   (the equivalence property test), and queries the columnar planner
   cannot handle (3+-way products, predicates it cannot prove total) fall
   back here. *)

let run_rows db q =
  if q.items = [] then sql_error "empty select list";
  if q.from = [] then sql_error "empty from list";
  let frames =
    List.map
      (fun (table_name, alias) ->
        match Database.find_table db table_name with
        | None -> sql_error "no table named %s" table_name
        | Some t ->
            {
              alias = Option.value alias ~default:table_name;
              schema = Table.schema t;
              row = [||];
            })
      q.from
  in
  (let aliases = List.map (fun f -> f.alias) frames in
   if List.length (List.sort_uniq String.compare aliases) <> List.length aliases
   then sql_error "duplicate table alias in FROM");
  let tables =
    List.map (fun (table_name, _) -> Database.get_table db table_name) q.from
  in
  (* Expand * into per-frame column items. *)
  let items =
    expand_items (List.map (fun f -> (f.alias, f.schema)) frames) q.items
  in
  let columns = output_columns items in
  let out = ref [] in
  let emit () =
    if eval_pred frames q.where then
      let row =
        Array.of_list
          (List.map
             (function
               | Item (s, _) -> eval_scalar frames s
               | Star -> assert false)
             items)
      in
      out := row :: !out
  in
  (* Nested-loop cartesian product over the FROM frames. *)
  let rec product frames_tables =
    match frames_tables with
    | [] -> emit ()
    | (frame, table) :: rest ->
        List.iter
          (fun row ->
            frame.row <- row;
            product rest)
          (Table.rows table)
  in
  product (List.combine frames tables);
  finalize q columns (List.rev !out)

(* -- columnar engine --

   Batch-at-a-time evaluation over the tables' column vectors. Predicates
   evaluate as passes over selection vectors (ascending row ids);
   [Cmp(op, col, lit)] shapes run as typed kernels over the unboxed
   arrays (string equality compares dictionary codes; LIKE is evaluated
   once per distinct dictionary entry); everything else drops to a
   per-active-row evaluation of the same [eval_cmp]/[numeric_arith] the
   row engine uses.

   Parity rules the engines observe so that answers (and raised errors)
   coincide:
   - masked evaluation: [And (a, b)] evaluates [b] only on rows where [a]
     held, [Or (a, b)] only where [a] failed — exactly the (row,
     subexpression) pairs the row engine's short-circuit evaluation
     visits, so a raising subexpression raises in both engines;
   - column resolution failures are compiled into raising closures, so —
     as in the row engine, which resolves per (row, scalar) — an unknown
     column in an item only raises if some row reaches it;
   - indexes and conjunct reordering are used only when the whole
     predicate is statically total (cannot raise: no Div/Mod, all
     comparisons type-compatible by schema), so evaluation order is
     unobservable;
   - emission order reproduces the row engine's scan order (single table:
     insertion order; join: left-major, right in insertion order), which
     LIMIT without ORDER BY can observe. *)

type cframe = { cf_alias : string; cf_schema : Schema.t; cf_table : Table.t }

(* Mirrors [lookup_col]'s candidate rules and error messages. *)
let resolve_col frames qualifier column =
  let hits = ref [] in
  Array.iteri
    (fun fi f ->
      if
        (match qualifier with
        | Some q -> String.equal q f.cf_alias
        | None -> true)
        && Schema.mem f.cf_schema column
      then hits := (fi, Schema.index_of f.cf_schema column) :: !hits)
    frames;
  match !hits with
  | [ hit ] -> Ok hit
  | [] ->
      Error
        (Fmt.str "unknown column %s%s"
           (match qualifier with Some q -> q ^ "." | None -> "")
           column)
  | _ -> Error (Fmt.str "ambiguous column %s" column)

(* A compiled scalar takes one row id per frame. *)
let rec compile_scalar frames = function
  | Lit v -> fun _ -> v
  | Col (q, c) -> (
      match resolve_col frames q c with
      | Ok (fi, ci) ->
          let col = Table.column_at frames.(fi).cf_table ci in
          fun rows -> Column.get col rows.(fi)
      | Error msg -> fun _ -> raise (Sql_error msg))
  | Arith (op, a, b) ->
      let fa = compile_scalar frames a and fb = compile_scalar frames b in
      fun rows -> numeric_arith op (fa rows) (fb rows)

let rec compile_pred frames = function
  | True -> fun _ -> true
  | Cmp (op, x, y) ->
      let fx = compile_scalar frames x and fy = compile_scalar frames y in
      fun rows -> eval_cmp op (fx rows) (fy rows)
  | And (a, b) ->
      let fa = compile_pred frames a and fb = compile_pred frames b in
      fun rows -> fa rows && fb rows
  | Or (a, b) ->
      let fa = compile_pred frames a and fb = compile_pred frames b in
      fun rows -> fa rows || fb rows
  | Not a ->
      let fa = compile_pred frames a in
      fun rows -> not (fa rows)

(* -- static totality: can evaluating this predicate ever raise? -- *)

type kinds = { k_num : bool; k_str : bool; k_bool : bool; k_null : bool }

let no_kinds = { k_num = false; k_str = false; k_bool = false; k_null = false }

(* [Some kinds]: evaluation cannot raise and yields one of these kinds.
   [None]: evaluation may raise (or is beyond the analysis). *)
let rec scalar_kinds frames = function
  | Lit (V.Int _ | V.Float _) -> Some { no_kinds with k_num = true }
  | Lit (V.String _) -> Some { no_kinds with k_str = true }
  | Lit (V.Bool _) -> Some { no_kinds with k_bool = true }
  | Lit V.Null -> Some { no_kinds with k_null = true }
  | Lit _ -> None
  | Col (q, c) -> (
      match resolve_col frames q c with
      | Error _ -> None
      | Ok (fi, ci) -> (
          let nullable = { no_kinds with k_null = true } in
          match snd (List.nth frames.(fi).cf_schema.Schema.columns ci) with
          | Schema.TInt | Schema.TFloat -> Some { nullable with k_num = true }
          | Schema.TString -> Some { nullable with k_str = true }
          | Schema.TBool -> Some { nullable with k_bool = true }))
  | Arith ((Div | Mod), _, _) -> None
  | Arith (((Add | Sub | Mul) as op), a, b) -> (
      match (scalar_kinds frames a, scalar_kinds frames b) with
      | Some ka, Some kb ->
          (* every possible operand pairing must be raise-free *)
          let num_num = ka.k_num && kb.k_num in
          let str_str = op = Add && ka.k_str && kb.k_str in
          let bad_left = ka.k_bool || (ka.k_str && not str_str) in
          let bad_right = kb.k_bool || (kb.k_str && not str_str) in
          let mixed =
            (ka.k_num && kb.k_str) || (ka.k_str && kb.k_num) || bad_left
            || bad_right
          in
          if mixed then None
          else
            Some
              {
                no_kinds with
                k_num = num_num;
                k_str = str_str;
                k_null = ka.k_null || kb.k_null;
              }
      | _ -> None)

let cmp_total op ka kb =
  let pairs_ok =
    match op with
    | Like ->
        (* String LIKE String matches; NULL on either side is false;
           anything else raises. *)
        (not (ka.k_num || ka.k_bool)) && not (kb.k_num || kb.k_bool)
    | _ ->
        (* [numeric_compare] succeeds on same-kind operands and on NULL
           against anything; cross-kind raises. *)
        let cross =
          (ka.k_num && (kb.k_str || kb.k_bool))
          || (ka.k_str && (kb.k_num || kb.k_bool))
          || (ka.k_bool && (kb.k_num || kb.k_str))
        in
        not cross
  in
  pairs_ok

let rec pred_total frames = function
  | True -> true
  | And (a, b) | Or (a, b) -> pred_total frames a && pred_total frames b
  | Not a -> pred_total frames a
  | Cmp (op, x, y) -> (
      match (scalar_kinds frames x, scalar_kinds frames y) with
      | Some ka, Some kb -> cmp_total op ka kb
      | _ -> false)

(* -- selection vectors: ascending row-id arrays -- *)

let sel_all n = Array.init n Fun.id

let sel_filter active pass =
  let buf = Array.make (Array.length active) 0 in
  let k = ref 0 in
  Array.iter
    (fun r ->
      if pass r then (
        buf.(!k) <- r;
        incr k))
    active;
  Array.sub buf 0 !k

(* [active] minus [sub]; [sub] is an ascending subset of [active]. *)
let sel_diff active sub =
  let buf = Array.make (Array.length active) 0 in
  let k = ref 0 and j = ref 0 in
  let m = Array.length sub in
  Array.iter
    (fun r ->
      if !j < m && sub.(!j) = r then incr j
      else (
        buf.(!k) <- r;
        incr k))
    active;
  Array.sub buf 0 !k

(* Merge of two disjoint ascending arrays. *)
let sel_union a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < la && !j < lb do
    if a.(!i) < b.(!j) then (
      out.(!k) <- a.(!i);
      incr i)
    else (
      out.(!k) <- b.(!j);
      incr j);
    incr k
  done;
  while !i < la do
    out.(!k) <- a.(!i);
    incr i;
    incr k
  done;
  while !j < lb do
    out.(!k) <- b.(!j);
    incr j;
    incr k
  done;
  out

(* -- typed comparison kernels for [col <op> lit] -- *)

let cmp_holds op c =
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0
  | Like -> assert false

let flip_cmp = function
  | Eq -> Eq
  | Ne -> Ne
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le
  | Like -> assert false

(* A per-row test for [value(col, row) <op> lit], following
   [numeric_compare] (NULL < everything, NULL = NULL) exactly. [None]
   when no typed kernel applies — the caller falls back to the generic
   per-row path, which also owns every raising case (so error messages
   keep the row engine's operand orientation). *)
let col_lit_kernel col op lit =
  match op with
  | Like -> (
      match (col.Column.payload, lit) with
      | Column.Strings s, V.String pattern ->
          (* one LIKE evaluation per distinct dictionary entry *)
          let memo = Bytes.make (max 1 s.Column.dict_size) '\002' in
          let verdict code =
            match Bytes.get memo code with
            | '\000' -> false
            | '\001' -> true
            | _ ->
                let v = V.like_match ~pattern s.Column.dict.(code) in
                Bytes.set memo code (if v then '\001' else '\000');
                v
          in
          Some
            (fun r ->
              (not (Column.is_null col r)) && verdict s.Column.codes.(r))
      | Column.Strings _, V.Null -> Some (fun _ -> false)
      | _ -> None)
  | _ -> (
      let holds = cmp_holds op in
      let on_null = holds (-1) in
      match (col.Column.payload, lit) with
      | _, V.Null ->
          (* NULL = NULL only; everything else is greater than NULL *)
          let null_pass = holds 0 and val_pass = holds 1 in
          Some
            (fun r -> if Column.is_null col r then null_pass else val_pass)
      | Column.Ints a, V.Int k ->
          (* the hottest kernel: branch on the operator once, not per row *)
          let nulls = col.Column.nulls in
          let test =
            match op with
            | Eq -> fun r -> a.(r) = k
            | Ne -> fun r -> a.(r) <> k
            | Lt -> fun r -> a.(r) < k
            | Le -> fun r -> a.(r) <= k
            | Gt -> fun r -> a.(r) > k
            | Ge -> fun r -> a.(r) >= k
            | Like -> assert false
          in
          Some
            (fun r -> if Bytes.get nulls r = '\001' then on_null else test r)
      | Column.Ints a, V.Float f ->
          Some
            (fun r ->
              if Column.is_null col r then on_null
              else holds (Float.compare (float_of_int a.(r)) f))
      | Column.Floats a, V.Float f ->
          Some
            (fun r ->
              if Column.is_null col r then on_null
              else holds (Float.compare a.(r) f))
      | Column.Floats a, V.Int k ->
          let f = float_of_int k in
          Some
            (fun r ->
              if Column.is_null col r then on_null
              else holds (Float.compare a.(r) f))
      | Column.Strings s, V.String str -> (
          match op with
          | Eq | Ne ->
              (* encoded equality: an integer comparison on codes *)
              let code =
                match Column.code_of_opt col str with
                | Some c -> c
                | None -> -2 (* absent from the dictionary: never equal *)
              in
              let eq_pass = holds 0 and ne_pass = holds 1 in
              Some
                (fun r ->
                  if Column.is_null col r then on_null
                  else if s.Column.codes.(r) = code then eq_pass
                  else ne_pass)
          | _ ->
              (* one String.compare per distinct dictionary entry *)
              let memo = Bytes.make (max 1 s.Column.dict_size) '\002' in
              let verdict code =
                match Bytes.get memo code with
                | '\000' -> false
                | '\001' -> true
                | _ ->
                    let v = holds (String.compare s.Column.dict.(code) str) in
                    Bytes.set memo code (if v then '\001' else '\000');
                    v
              in
              Some
                (fun r ->
                  if Column.is_null col r then on_null
                  else verdict s.Column.codes.(r)))
      | Column.Bools b, V.Bool x ->
          Some
            (fun r ->
              if Column.is_null col r then on_null
              else holds (Bool.compare (Bytes.get b r = '\001') x))
      | _ -> None)

(* -- masked predicate evaluation over one table -- *)

let cmp_pass frames op x y =
  let kernel =
    match (x, y) with
    | Col (q, c), Lit v -> (
        match resolve_col frames q c with
        | Ok (fi, ci) ->
            col_lit_kernel (Table.column_at frames.(fi).cf_table ci) op v
        | Error _ -> None)
    | Lit v, Col (q, c) when op <> Like -> (
        match resolve_col frames q c with
        | Ok (fi, ci) ->
            col_lit_kernel
              (Table.column_at frames.(fi).cf_table ci)
              (flip_cmp op) v
        | Error _ -> None)
    | _ -> None
  in
  match kernel with
  | Some pass -> pass
  | None ->
      let fx = compile_scalar frames x and fy = compile_scalar frames y in
      let rowbuf = Array.make (Array.length frames) 0 in
      fun r ->
        rowbuf.(0) <- r;
        eval_cmp op (fx rowbuf) (fy rowbuf)

let eval_cmp_vec frames active op x y = sel_filter active (cmp_pass frames op x y)

let rec eval_pred_vec frames active = function
  | True -> active
  | Cmp (op, x, y) -> eval_cmp_vec frames active op x y
  | And (a, b) ->
      let sa = eval_pred_vec frames active a in
      eval_pred_vec frames sa b
  | Or (a, b) ->
      let sa = eval_pred_vec frames active a in
      let sb = eval_pred_vec frames (sel_diff active sa) b in
      sel_union sa sb
  | Not a -> sel_diff active (eval_pred_vec frames active a)

(* The first predicate pass over a whole table: run the leading kernels
   against the implicit 0..n-1 range instead of materializing an
   identity selection vector first.  Falls back to the materialized path
   for [Or]/[Not], whose complements need the range as an array. *)
let rec eval_pred_full frames n = function
  | True -> sel_all n
  | Cmp (op, x, y) ->
      let pass = cmp_pass frames op x y in
      let buf = Array.make (max 1 n) 0 in
      let k = ref 0 in
      for r = 0 to n - 1 do
        if pass r then (
          buf.(!k) <- r;
          incr k)
      done;
      Array.sub buf 0 !k
  | And (a, b) -> eval_pred_vec frames (eval_pred_full frames n a) b
  | (Or _ | Not _) as p -> eval_pred_vec frames (sel_all n) p

(* -- index planning (single table) -- *)

let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | True -> []
  | p -> [ p ]

let rec conjoin = function
  | [] -> True
  | [ p ] -> p
  | p :: rest -> And (p, conjoin rest)

let index_op = function
  | Eq -> Some Index.Op_eq
  | Ne -> Some Index.Op_ne
  | Lt -> Some Index.Op_lt
  | Le -> Some Index.Op_le
  | Gt -> Some Index.Op_gt
  | Ge -> Some Index.Op_ge
  | Like -> None

(* The first conjunct an index can serve, as
   [(column, rows, remaining conjuncts)]. Only called on statically total
   predicates, where dropping one conjunct out of evaluation order is
   unobservable. *)
let pick_index frames pred =
  let table = frames.(0).cf_table in
  let try_probe op q c v =
    match index_op op with
    | None -> None
    | Some iop -> (
        match resolve_col frames q c with
        | Error _ -> None
        | Ok (_, ci) -> (
            match Table.index_for table c with
            | None -> None
            | Some ix ->
                Option.map
                  (fun rows -> (c, rows))
                  (Index.lookup ix (Table.column_at table ci) iop v)))
  in
  let rec go seen = function
    | [] -> None
    | p :: rest -> (
        let probe =
          match p with
          | Cmp (op, Col (q, c), Lit v) -> try_probe op q c v
          | Cmp (op, Lit v, Col (q, c)) when op <> Like ->
              try_probe (flip_cmp op) q c v
          | _ -> None
        in
        match probe with
        | Some (c, rows) -> Some (c, rows, List.rev_append seen rest)
        | None -> go (p :: seen) rest)
  in
  go [] (conjuncts pred)

(* -- single-table execution -- *)

let run_single q table alias =
  let frames =
    [| { cf_alias = alias; cf_schema = Table.schema table; cf_table = table } |]
  in
  let items = expand_items [ (alias, Table.schema table) ] q.items in
  let columns = output_columns items in
  let n = Table.cardinality table in
  let sel =
    if pred_total frames q.where then
      match pick_index frames q.where with
      | Some (_, rows, rest) -> eval_pred_vec frames rows (conjoin rest)
      | None -> eval_pred_full frames n q.where
    else eval_pred_full frames n q.where
  in
  let compiled =
    Array.of_list
      (List.map
         (function
           | Item (s, _) -> compile_scalar frames s
           | Star -> assert false)
         items)
  in
  let rowbuf = [| 0 |] in
  let rows = ref [] in
  for i = Array.length sel - 1 downto 0 do
    rowbuf.(0) <- sel.(i);
    rows := Array.map (fun f -> f rowbuf) compiled :: !rows
  done;
  finalize q columns !rows

(* -- two-table hash join -- *)

(* An equi-join conjunct [left.col = right.col] both sides resolve and
   whose column types agree (hash keys must be comparable without
   numeric coercion). Returns [(left column index, right column index,
   remaining conjuncts)]. *)
let plan_join frames pred =
  if not (pred_total frames pred) then None
  else
    let col_ty fi ci =
      snd (List.nth frames.(fi).cf_schema.Schema.columns ci)
    in
    let rec go seen = function
      | [] -> None
      | p :: rest -> (
          let key =
            match p with
            | Cmp (Eq, Col (qx, cx), Col (qy, cy)) -> (
                match (resolve_col frames qx cx, resolve_col frames qy cy) with
                | Ok (0, ci0), Ok (1, ci1) when col_ty 0 ci0 = col_ty 1 ci1 ->
                    Some (ci0, ci1)
                | Ok (1, ci1), Ok (0, ci0) when col_ty 0 ci0 = col_ty 1 ci1 ->
                    Some (ci0, ci1)
                | _ -> None)
            | _ -> None
          in
          match key with
          | Some (ci0, ci1) -> Some (ci0, ci1, List.rev_append seen rest)
          | None -> go (p :: seen) rest)
    in
    go [] (conjuncts pred)

let run_join q (t0, a0) (t1, a1) =
  let frames =
    [|
      { cf_alias = a0; cf_schema = Table.schema t0; cf_table = t0 };
      { cf_alias = a1; cf_schema = Table.schema t1; cf_table = t1 };
    |]
  in
  match plan_join frames q.where with
  | None -> None
  | Some (ci0, ci1, rest) ->
      let items =
        expand_items
          [ (a0, Table.schema t0); (a1, Table.schema t1) ]
          q.items
      in
      let columns = output_columns items in
      let col0 = Table.column_at t0 ci0 and col1 = Table.column_at t1 ci1 in
      let n0 = Table.cardinality t0 and n1 = Table.cardinality t1 in
      (* Build on the right table so emission stays left-major with right
         rows in insertion order — the row engine's nested-loop order. *)
      let buckets = Hashtbl.create (max 16 n1) in
      let null_rows = ref [] in
      let key1 =
        match col1.Column.payload with
        | Column.Ints a -> fun i -> a.(i)
        | Column.Floats a -> fun i -> Index.float_key a.(i)
        | Column.Bools b -> fun i -> if Bytes.get b i = '\001' then 1 else 0
        | Column.Strings s -> fun i -> s.Column.codes.(i)
      in
      for i = n1 - 1 downto 0 do
        if Column.is_null col1 i then null_rows := i :: !null_rows
        else
          let k = key1 i in
          Hashtbl.replace buckets k
            (i
            :: (match Hashtbl.find_opt buckets k with
               | Some rows -> rows
               | None -> []))
      done;
      let null_rows = !null_rows in
      (* Probe-side key translation; NULL probes match the NULL bucket
         (NULL = NULL holds). Float buckets are re-checked exactly
         because distinct floats can share a truncated bits key. *)
      let matches_of =
        match (col0.Column.payload, col1.Column.payload) with
        | Column.Ints a0_, _ ->
            fun l ->
              (match Hashtbl.find_opt buckets a0_.(l) with
              | Some rows -> rows
              | None -> [])
        | Column.Floats a0_, Column.Floats a1_ ->
            fun l ->
              let f = a0_.(l) in
              List.filter
                (fun r -> Float.compare a1_.(r) f = 0)
                (match Hashtbl.find_opt buckets (Index.float_key f) with
                | Some rows -> rows
                | None -> [])
        | Column.Bools b0, _ ->
            fun l ->
              (match
                 Hashtbl.find_opt buckets
                   (if Bytes.get b0 l = '\001' then 1 else 0)
               with
              | Some rows -> rows
              | None -> [])
        | Column.Strings s0, _ ->
            (* translate left dictionary codes to right codes, once per
               distinct left string *)
            let xlate = Array.make (max 1 s0.Column.dict_size) (-2) in
            fun l ->
              let lcode = s0.Column.codes.(l) in
              let rcode =
                match xlate.(lcode) with
                | -2 ->
                    let rc =
                      match
                        Column.code_of_opt col1 s0.Column.dict.(lcode)
                      with
                      | Some c -> c
                      | None -> -1
                    in
                    xlate.(lcode) <- rc;
                    rc
                | rc -> rc
              in
              if rcode < 0 then []
              else
                (match Hashtbl.find_opt buckets rcode with
                | Some rows -> rows
                | None -> [])
        | Column.Floats _, _ -> assert false (* types agree *)
      in
      let residual = compile_pred frames (conjoin rest) in
      let compiled =
        Array.of_list
          (List.map
             (function
               | Item (s, _) -> compile_scalar frames s
               | Star -> assert false)
             items)
      in
      let rowbuf = [| 0; 0 |] in
      let out = ref [] in
      for l = 0 to n0 - 1 do
        let candidates =
          if Column.is_null col0 l then null_rows else matches_of l
        in
        List.iter
          (fun r ->
            rowbuf.(0) <- l;
            rowbuf.(1) <- r;
            if residual rowbuf then
              out := Array.map (fun f -> f rowbuf) compiled :: !out)
          candidates
      done;
      Some (finalize q columns (List.rev !out))

(* -- dispatch -- *)

let resolve_from db q =
  if q.items = [] then sql_error "empty select list";
  if q.from = [] then sql_error "empty from list";
  let frames =
    List.map
      (fun (table_name, alias) ->
        match Database.find_table db table_name with
        | None -> sql_error "no table named %s" table_name
        | Some t -> (t, Option.value alias ~default:table_name))
      q.from
  in
  (let aliases = List.map snd frames in
   if List.length (List.sort_uniq String.compare aliases) <> List.length aliases
   then sql_error "duplicate table alias in FROM");
  frames

let run db q =
  match resolve_from db q with
  | [ (t, alias) ] -> run_single q t alias
  | [ f0; f1 ] -> (
      match run_join q f0 f1 with Some r -> r | None -> run_rows db q)
  | _ -> run_rows db q

let explain_engine db q =
  match resolve_from db q with
  | [ (t, alias) ] ->
      let frames =
        [| { cf_alias = alias; cf_schema = Table.schema t; cf_table = t } |]
      in
      if pred_total frames q.where then
        match pick_index frames q.where with
        | Some (c, _, _) -> `Columnar_indexed c
        | None -> `Columnar
      else `Columnar
  | [ (t0, a0); (t1, a1) ] ->
      let frames =
        [|
          { cf_alias = a0; cf_schema = Table.schema t0; cf_table = t0 };
          { cf_alias = a1; cf_schema = Table.schema t1; cf_table = t1 };
        |]
      in
      if plan_join frames q.where <> None then `Columnar_join else `Rows
  | _ -> `Rows

let run_string db sql = run db (parse sql)
