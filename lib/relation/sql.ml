module V = Disco_value.Value
module Lexer = Disco_lex.Lexer
module Stream = Disco_lex.Lexer.Stream

type scalar =
  | Col of string option * string
  | Lit of V.t
  | Arith of arith_op * scalar * scalar

and arith_op = Add | Sub | Mul | Div | Mod

type cmp = Eq | Ne | Lt | Le | Gt | Ge | Like

type pred =
  | True
  | Cmp of cmp * scalar * scalar
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type item = Star | Item of scalar * string option

type query = {
  distinct : bool;
  items : item list;
  from : (string * string option) list;
  where : pred;
  order_by : (scalar * [ `Asc | `Desc ]) list;
  limit : int option;
}

let select ?(distinct = false) ?(where = True) ?(order_by = []) ?limit items
    from =
  { distinct; items; from; where; order_by; limit }

(* -- printing -- *)

let arith_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"

let cmp_symbol = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Like -> "LIKE"

let pp_lit ppf = function
  | V.Null -> Fmt.string ppf "NULL"
  | V.Bool true -> Fmt.string ppf "TRUE"
  | V.Bool false -> Fmt.string ppf "FALSE"
  | V.Int i -> Fmt.int ppf i
  | V.Float f -> Fmt.pf ppf "%.12g" f
  | V.String s -> Fmt.pf ppf "'%s'" (String.concat "''" (String.split_on_char '\'' s))
  | v -> invalid_arg ("non-atomic SQL literal: " ^ V.type_name v)

let rec pp_scalar ppf = function
  | Col (None, c) -> Fmt.string ppf c
  | Col (Some t, c) -> Fmt.pf ppf "%s.%s" t c
  | Lit v -> pp_lit ppf v
  | Arith (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" pp_scalar a (arith_symbol op) pp_scalar b

let rec pp_pred ppf = function
  | True -> Fmt.string ppf "TRUE"
  | Cmp (op, a, b) -> Fmt.pf ppf "%a %s %a" pp_scalar a (cmp_symbol op) pp_scalar b
  | And (a, b) -> Fmt.pf ppf "(%a AND %a)" pp_pred a pp_pred b
  | Or (a, b) -> Fmt.pf ppf "(%a OR %a)" pp_pred a pp_pred b
  | Not a -> Fmt.pf ppf "NOT (%a)" pp_pred a

let pp_item ppf = function
  | Star -> Fmt.string ppf "*"
  | Item (s, None) -> pp_scalar ppf s
  | Item (s, Some a) -> Fmt.pf ppf "%a AS %s" pp_scalar s a

let pp_from ppf (table, alias) =
  match alias with
  | None -> Fmt.string ppf table
  | Some a -> Fmt.pf ppf "%s %s" table a

let pp_query ppf q =
  Fmt.pf ppf "SELECT %s%a FROM %a"
    (if q.distinct then "DISTINCT " else "")
    (Fmt.list ~sep:(Fmt.any ", ") pp_item)
    q.items
    (Fmt.list ~sep:(Fmt.any ", ") pp_from)
    q.from;
  (match q.where with
  | True -> ()
  | p -> Fmt.pf ppf " WHERE %a" pp_pred p);
  (match q.order_by with
  | [] -> ()
  | obs ->
      let pp_ob ppf (s, dir) =
        Fmt.pf ppf "%a %s" pp_scalar s
          (match dir with `Asc -> "ASC" | `Desc -> "DESC")
      in
      Fmt.pf ppf " ORDER BY %a" (Fmt.list ~sep:(Fmt.any ", ") pp_ob) obs);
  match q.limit with None -> () | Some n -> Fmt.pf ppf " LIMIT %d" n

let to_string q = Fmt.str "%a" pp_query q

(* -- parsing -- *)

let puncts =
  [ "<="; ">="; "<>"; "!="; "="; "<"; ">"; "("; ")"; ","; "."; "+"; "-"; "*"; "/"; "%" ]

let rec parse_scalar s = parse_additive s

and parse_additive s =
  let left = parse_multiplicative s in
  if Stream.try_punct s "+" then Arith (Add, left, parse_additive s)
  else if Stream.try_punct s "-" then
    (* left-associate subtraction chains *)
    let rec chain acc =
      let right = parse_multiplicative s in
      let acc = Arith (Sub, acc, right) in
      if Stream.try_punct s "-" then chain acc
      else if Stream.try_punct s "+" then Arith (Add, acc, parse_additive s)
      else acc
    in
    chain left
  else left

and parse_multiplicative s =
  let left = parse_atom s in
  if Stream.try_punct s "*" then Arith (Mul, left, parse_multiplicative s)
  else if Stream.try_punct s "/" then Arith (Div, left, parse_multiplicative s)
  else if Stream.try_punct s "%" then Arith (Mod, left, parse_multiplicative s)
  else left

and parse_atom s =
  match Stream.peek s with
  | Some (Lexer.Int i) ->
      ignore (Stream.next s);
      Lit (V.Int i)
  | Some (Lexer.Float f) ->
      ignore (Stream.next s);
      Lit (V.Float f)
  | Some (Lexer.Str str) ->
      ignore (Stream.next s);
      Lit (V.String str)
  | Some (Lexer.Punct "(") ->
      ignore (Stream.next s);
      let e = parse_scalar s in
      Stream.eat_punct s ")";
      e
  | Some (Lexer.Punct "-") ->
      ignore (Stream.next s);
      Arith (Sub, Lit (V.Int 0), parse_atom s)
  | Some (Lexer.Ident id) when String.lowercase_ascii id = "null" ->
      ignore (Stream.next s);
      Lit V.Null
  | Some (Lexer.Ident id) when String.lowercase_ascii id = "true" ->
      ignore (Stream.next s);
      Lit (V.Bool true)
  | Some (Lexer.Ident id) when String.lowercase_ascii id = "false" ->
      ignore (Stream.next s);
      Lit (V.Bool false)
  | Some (Lexer.Ident _) ->
      let first = Stream.ident s in
      if Stream.try_punct s "." then Col (Some first, Stream.ident s)
      else Col (None, first)
  | _ -> Stream.failf s "expected a scalar expression"

let parse_cmp_op s =
  if Stream.try_kw s "like" then Like
  else if Stream.try_punct s "=" then Eq
  else if Stream.try_punct s "<>" then Ne
  else if Stream.try_punct s "!=" then Ne
  else if Stream.try_punct s "<=" then Le
  else if Stream.try_punct s ">=" then Ge
  else if Stream.try_punct s "<" then Lt
  else if Stream.try_punct s ">" then Gt
  else Stream.failf s "expected a comparison operator"

let rec parse_pred s = parse_or s

and parse_or s =
  let left = parse_and s in
  if Stream.try_kw s "or" then Or (left, parse_or s) else left

and parse_and s =
  let left = parse_not s in
  if Stream.try_kw s "and" then And (left, parse_and s) else left

and parse_not s =
  if Stream.try_kw s "not" then Not (parse_not s) else parse_pred_atom s

and parse_pred_atom s =
  let comparison s =
    let left = parse_scalar s in
    let op = parse_cmp_op s in
    let right = parse_scalar s in
    Cmp (op, left, right)
  in
  if Stream.peek_punct s "(" then (
    (* "(" opens either a parenthesized predicate or a parenthesized
       scalar that begins a comparison; try the predicate reading and
       backtrack on failure. *)
    let saved = Stream.save s in
    match
      (try
         Stream.eat_punct s "(";
         let inner = parse_pred s in
         Stream.eat_punct s ")";
         Some inner
       with Lexer.Error _ -> None)
    with
    | Some inner -> inner
    | None ->
        Stream.restore s saved;
        comparison s)
  else if Stream.try_kw s "true" then True
  else comparison s

let parse_item s =
  if Stream.try_punct s "*" then Star
  else
    let e = parse_scalar s in
    if Stream.try_kw s "as" then Item (e, Some (Stream.ident s))
    else Item (e, None)

let reserved =
  [ "from"; "where"; "order"; "limit"; "group"; "as"; "and"; "or"; "not"; "asc"; "desc" ]

let parse_from_entry s =
  let table = Stream.ident s in
  match Stream.peek s with
  | Some (Lexer.Ident id)
    when not (List.mem (String.lowercase_ascii id) reserved) ->
      ignore (Stream.next s);
      (table, Some id)
  | _ -> (table, None)

let rec parse_comma_list s elem =
  let first = elem s in
  if Stream.try_punct s "," then first :: parse_comma_list s elem else [ first ]

let parse_query s =
  Stream.eat_kw s "select";
  let distinct = Stream.try_kw s "distinct" in
  let items = parse_comma_list s parse_item in
  Stream.eat_kw s "from";
  let from = parse_comma_list s parse_from_entry in
  let where = if Stream.try_kw s "where" then parse_pred s else True in
  let order_by =
    if Stream.try_kw s "order" then (
      Stream.eat_kw s "by";
      parse_comma_list s (fun s ->
          let e = parse_scalar s in
          let dir =
            if Stream.try_kw s "desc" then `Desc
            else (
              ignore (Stream.try_kw s "asc");
              `Asc)
          in
          (e, dir)))
    else []
  in
  let limit =
    if Stream.try_kw s "limit" then
      match Stream.next s with
      | Lexer.Int n -> Some n
      | t -> Stream.failf s "expected an integer limit, found %s" (Lexer.token_to_string t)
    else None
  in
  { distinct; items; from; where; order_by; limit }

let parse input =
  let s = Stream.of_string ~puncts input in
  let q = parse_query s in
  ignore (Stream.try_punct s ";");
  Stream.expect_end s;
  q

(* -- results -- *)

type result = { columns : string list; rows : V.t array list }

let result_to_bag r =
  V.bag
    (List.map
       (fun row -> V.strct (List.mapi (fun i c -> (c, row.(i))) r.columns))
       r.rows)

let pp_result ppf r =
  Fmt.pf ppf "%a@\n" (Fmt.list ~sep:(Fmt.any " | ") Fmt.string) r.columns;
  List.iter
    (fun row ->
      Fmt.pf ppf "%a@\n"
        (Fmt.array ~sep:(Fmt.any " | ") V.pp)
        row)
    r.rows

(* -- evaluation -- *)

exception Sql_error of string

let sql_error fmt = Format.kasprintf (fun s -> raise (Sql_error s)) fmt

(* A binding environment: one (alias, schema, row) frame per FROM entry. *)
type frame = { alias : string; schema : Schema.t; mutable row : V.t array }

let lookup_col frames qualifier column =
  let candidates =
    List.filter
      (fun f ->
        (match qualifier with
        | Some q -> String.equal q f.alias
        | None -> true)
        && Schema.mem f.schema column)
      frames
  in
  match candidates with
  | [ f ] -> (f, Schema.index_of f.schema column)
  | [] ->
      sql_error "unknown column %s%s"
        (match qualifier with Some q -> q ^ "." | None -> "")
        column
  | _ -> sql_error "ambiguous column %s" column

let numeric_arith op a b =
  match (op, a, b) with
  | _, V.Null, _ | _, _, V.Null -> V.Null
  | Add, V.Int x, V.Int y -> V.Int (x + y)
  | Sub, V.Int x, V.Int y -> V.Int (x - y)
  | Mul, V.Int x, V.Int y -> V.Int (x * y)
  | Div, V.Int x, V.Int y ->
      if y = 0 then sql_error "division by zero" else V.Int (x / y)
  | Mod, V.Int x, V.Int y ->
      if y = 0 then sql_error "modulo by zero" else V.Int (x mod y)
  | Mod, _, _ -> sql_error "modulo requires integers"
  | _, (V.Int _ | V.Float _), (V.Int _ | V.Float _) ->
      let x = V.to_float a and y = V.to_float b in
      V.Float
        (match op with
        | Add -> x +. y
        | Sub -> x -. y
        | Mul -> x *. y
        | Div -> if y = 0.0 then sql_error "division by zero" else x /. y
        | Mod -> assert false)
  | Add, V.String x, V.String y -> V.String (x ^ y)
  | _ ->
      sql_error "arithmetic on non-numeric values %s and %s" (V.type_name a)
        (V.type_name b)

let rec eval_scalar frames = function
  | Lit v -> v
  | Col (q, c) ->
      let f, i = lookup_col frames q c in
      f.row.(i)
  | Arith (op, a, b) ->
      numeric_arith op (eval_scalar frames a) (eval_scalar frames b)

let eval_cmp op a b =
  (* SQL three-valued logic collapsed to two values: comparisons against
     NULL are false (except NULL = NULL, used by wrappers for missing
     data joins). *)
  match op with
  | Like -> (
      match (a, b) with
      | V.String s, V.String pattern -> V.like_match ~pattern s
      | V.Null, _ | _, V.Null -> false
      | _ -> sql_error "LIKE requires strings")
  | _ ->
  match V.numeric_compare a b with
  | None -> sql_error "type mismatch comparing %s and %s" (V.type_name a) (V.type_name b)
  | Some c -> (
      match op with
      | Eq -> c = 0
      | Ne -> c <> 0
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0
      | Like -> assert false)

let rec eval_pred frames = function
  | True -> true
  | Cmp (op, a, b) -> eval_cmp op (eval_scalar frames a) (eval_scalar frames b)
  | And (a, b) -> eval_pred frames a && eval_pred frames b
  | Or (a, b) -> eval_pred frames a || eval_pred frames b
  | Not a -> not (eval_pred frames a)

let scalar_output_name = function
  | Col (_, c) -> c
  | Lit _ -> "literal"
  | Arith _ -> "expr"

let run db q =
  if q.items = [] then sql_error "empty select list";
  if q.from = [] then sql_error "empty from list";
  let frames =
    List.map
      (fun (table_name, alias) ->
        match Database.find_table db table_name with
        | None -> sql_error "no table named %s" table_name
        | Some t ->
            {
              alias = Option.value alias ~default:table_name;
              schema = Table.schema t;
              row = [||];
            })
      q.from
  in
  (let aliases = List.map (fun f -> f.alias) frames in
   if List.length (List.sort_uniq String.compare aliases) <> List.length aliases
   then sql_error "duplicate table alias in FROM");
  let tables =
    List.map (fun (table_name, _) -> Database.get_table db table_name) q.from
  in
  (* Expand * into per-frame column items. *)
  let items =
    List.concat_map
      (function
        | Star ->
            List.concat_map
              (fun f ->
                List.map
                  (fun c -> Item (Col (Some f.alias, c), Some c))
                  (Schema.column_names f.schema))
              frames
        | Item _ as it -> [ it ])
      q.items
  in
  let columns =
    List.map
      (function
        | Item (s, Some a) -> ignore s; a
        | Item (s, None) -> scalar_output_name s
        | Star -> assert false)
      items
  in
  let out = ref [] in
  let emit () =
    if eval_pred frames q.where then
      let row =
        Array.of_list
          (List.map
             (function
               | Item (s, _) -> eval_scalar frames s
               | Star -> assert false)
             items)
      in
      out := row :: !out
  in
  (* Nested-loop cartesian product over the FROM frames. *)
  let rec product frames_tables =
    match frames_tables with
    | [] -> emit ()
    | (frame, table) :: rest ->
        List.iter
          (fun row ->
            frame.row <- row;
            product rest)
          (Table.rows table)
  in
  product (List.combine frames tables);
  let rows = List.rev !out in
  let rows =
    if q.distinct then
      List.sort_uniq (fun a b -> V.compare (V.List (Array.to_list a)) (V.List (Array.to_list b))) rows
    else rows
  in
  let rows =
    match q.order_by with
    | [] -> rows
    | order_by ->
        (* Order-by keys are evaluated against the *output* row when the
           scalar is a bare output column, else against the input frames
           (already consumed); we support output-column ordering, which is
           what the wrappers generate. *)
        let key_indices =
          List.map
            (fun (s, dir) ->
              match s with
              | Col (None, c) -> (
                  match
                    List.find_index (fun col -> String.equal col c) columns
                  with
                  | Some i -> (i, dir)
                  | None -> sql_error "ORDER BY column %s not in select list" c)
              | _ -> sql_error "ORDER BY supports plain output columns only")
            order_by
        in
        let cmp_rows a b =
          let rec go = function
            | [] -> 0
            | (i, dir) :: rest ->
                let c = V.compare a.(i) b.(i) in
                let c = match dir with `Asc -> c | `Desc -> -c in
                if c <> 0 then c else go rest
          in
          go key_indices
        in
        List.stable_sort cmp_rows rows
  in
  let rows =
    match q.limit with
    | None -> rows
    | Some n -> List.filteri (fun i _ -> i < n) rows
  in
  { columns; rows }

let run_string db sql = run db (parse sql)
