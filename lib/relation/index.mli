(** Secondary indexes over a single column.

    Two kinds (cf. the related exemplars' dictionary and numeric-range
    indexes): a {e hash} index serving equality lookups on any column type
    (string keys are the column's dictionary codes, so probing is an
    integer hash), and a {e sorted} index over numeric columns serving
    range comparisons as binary searches.

    An index is a snapshot of a column; {!Table} rebuilds it lazily when
    the table version moves. Lookups return row ids in ascending order —
    the scan order of the columnar engine — or [None] when this index
    cannot serve the probe (the caller falls back to a scan). Lookup
    results follow {!Disco_value.Value.numeric_compare} semantics exactly,
    including [NULL < everything] (so [Lt]/[Le] results include NULL rows)
    and [NULL = NULL]. *)

module V := Disco_value.Value

type kind = Hash | Sorted

val kind_name : kind -> string
val kind_of_string : string -> kind option

val kind_supported : kind -> Schema.col_type -> bool
(** [Sorted] requires a numeric column; [Hash] supports every type. *)

type t

val build : kind -> Column.t -> t

type op = Op_eq | Op_ne | Op_lt | Op_le | Op_gt | Op_ge

val float_key : float -> int
(** Hash key of a float: raw bits with NaNs collapsed to one key.
    Distinct keys imply [Float.compare <> 0]; equal keys need an exact
    re-check (the dropped sign bit can merge buckets). Engine-internal:
    shared with {!Sql}'s hash join. *)

val lookup : t -> Column.t -> op -> V.t -> int array option
(** Row ids whose column value satisfies [value <op> probe], ascending.
    [None] when unservable: hash indexes serve only [Op_eq] with a
    non-NULL probe of the column's type (numeric probes may cross
    int/float); sorted indexes serve every [op] with numeric or NULL
    probes. *)
