(** Mediator-side types, following the ODMG-93 type system as used in the
    paper's examples ([String], [Short], interfaces, bags...). *)

type t =
  | TBool
  | TInt  (** covers ODL [Short] / [Long] *)
  | TFloat
  | TString
  | TVoid
  | TInterface of string  (** objects of a named interface *)
  | TStruct of (string * t) list
  | TBag of t
  | TSet of t
  | TList of t

val of_odl_name : string -> t option
(** Recognize ODL atomic type names ([String], [Short], [Long], [Float],
    [Double], [Boolean], ...). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool

val element_type : t -> t option
(** Element type of a collection type. *)

val to_col_type : t -> Disco_relation.Schema.col_type option
(** The relational column type corresponding to an atomic mediator type,
    when one exists. *)

val of_col_type : Disco_relation.Schema.col_type -> t
