module Schema = Disco_relation.Schema

type t =
  | TBool
  | TInt
  | TFloat
  | TString
  | TVoid
  | TInterface of string
  | TStruct of (string * t) list
  | TBag of t
  | TSet of t
  | TList of t

let of_odl_name name =
  match String.lowercase_ascii name with
  | "boolean" | "bool" -> Some TBool
  | "short" | "long" | "int" | "integer" -> Some TInt
  | "float" | "double" -> Some TFloat
  | "string" -> Some TString
  | "void" -> Some TVoid
  | _ -> None

let rec pp ppf = function
  | TBool -> Fmt.string ppf "Boolean"
  | TInt -> Fmt.string ppf "Short"
  | TFloat -> Fmt.string ppf "Float"
  | TString -> Fmt.string ppf "String"
  | TVoid -> Fmt.string ppf "Void"
  | TInterface name -> Fmt.string ppf name
  | TStruct fields ->
      let pp_field ppf (n, ty) = Fmt.pf ppf "%s: %a" n pp ty in
      Fmt.pf ppf "Struct(%a)" (Fmt.list ~sep:(Fmt.any ", ") pp_field) fields
  | TBag e -> Fmt.pf ppf "Bag<%a>" pp e
  | TSet e -> Fmt.pf ppf "Set<%a>" pp e
  | TList e -> Fmt.pf ppf "List<%a>" pp e

let to_string ty = Fmt.str "%a" pp ty

let rec equal a b =
  match (a, b) with
  | TBool, TBool | TInt, TInt | TFloat, TFloat | TString, TString | TVoid, TVoid
    ->
      true
  | TInterface x, TInterface y -> String.equal x y
  | TStruct xs, TStruct ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (nx, tx) (ny, ty) -> String.equal nx ny && equal tx ty)
           xs ys
  | TBag x, TBag y | TSet x, TSet y | TList x, TList y -> equal x y
  | _ -> false

let element_type = function
  | TBag e | TSet e | TList e -> Some e
  | TBool | TInt | TFloat | TString | TVoid | TInterface _ | TStruct _ -> None

let to_col_type = function
  | TBool -> Some Schema.TBool
  | TInt -> Some Schema.TInt
  | TFloat -> Some Schema.TFloat
  | TString -> Some Schema.TString
  | TVoid | TInterface _ | TStruct _ | TBag _ | TSet _ | TList _ -> None

let of_col_type = function
  | Schema.TBool -> TBool
  | Schema.TInt -> TInt
  | Schema.TFloat -> TFloat
  | Schema.TString -> TString
