module V = Disco_value.Value

type interface = {
  if_name : string;
  if_super : string option;
  if_declared_extent : string option;
  if_attributes : (string * Otype.t) list;
}

type meta_extent = {
  me_name : string;
  me_interface : string;
  me_wrapper : string;
  me_repository : string;
  me_replicas : string list;
  me_map : Typemap.t;
  me_partition : Disco_shard.Shard.partition option;
  me_shard_of : (string * int) option;
}

type obj = {
  obj_oid : V.oid;
  obj_constructor : string;
  obj_args : (string * V.t) list;
}

type t = {
  interfaces : (string, interface) Hashtbl.t;
  mutable interface_order : string list;  (* reverse definition order *)
  mutable extents : meta_extent list;  (* reverse definition order *)
  objects : (string, obj) Hashtbl.t;
  views : (string, string) Hashtbl.t;
  mutable view_order : string list;
  mutable next_oid : int;
  mutable version : int;
}

exception Odl_error of string

let odl_error fmt = Format.kasprintf (fun s -> raise (Odl_error s)) fmt

let create () =
  {
    interfaces = Hashtbl.create 16;
    interface_order = [];
    extents = [];
    objects = Hashtbl.create 16;
    views = Hashtbl.create 16;
    view_order = [];
    next_oid = 1;
    version = 0;
  }

let bump t = t.version <- t.version + 1

let find_interface t name = Hashtbl.find_opt t.interfaces name

let rec attributes_of t name =
  match find_interface t name with
  | None -> odl_error "unknown interface %s" name
  | Some itf ->
      let inherited =
        match itf.if_super with Some s -> attributes_of t s | None -> []
      in
      inherited @ itf.if_attributes

let find_extent t name =
  List.find_opt (fun e -> String.equal e.me_name name) t.extents

let add_interface t itf =
  if Hashtbl.mem t.interfaces itf.if_name then
    odl_error "interface %s already defined" itf.if_name;
  (match itf.if_super with
  | Some s when not (Hashtbl.mem t.interfaces s) ->
      odl_error "unknown supertype %s of interface %s" s itf.if_name
  | _ -> ());
  (match itf.if_declared_extent with
  | Some e when find_extent t e <> None ->
      odl_error "declared extent %s of interface %s collides with an extent" e
        itf.if_name
  | _ -> ());
  Hashtbl.replace t.interfaces itf.if_name itf;
  t.interface_order <- itf.if_name :: t.interface_order;
  (* Validate attribute uniqueness across the inheritance chain. *)
  (try
     let attrs = attributes_of t itf.if_name in
     let names = List.sort String.compare (List.map fst attrs) in
     let rec check = function
       | a :: (b :: _ as rest) ->
           if String.equal a b then
             odl_error "interface %s has duplicate attribute %s" itf.if_name a
           else check rest
       | [ _ ] | [] -> ()
     in
     check names
   with Odl_error _ as e ->
     Hashtbl.remove t.interfaces itf.if_name;
     t.interface_order <- List.tl t.interface_order;
     raise e);
  bump t

let interface_names t = List.rev t.interface_order

let subtype_of t ~sub ~super =
  let rec go name =
    if String.equal name super then true
    else
      match find_interface t name with
      | Some { if_super = Some s; _ } -> go s
      | _ -> false
  in
  go sub

let subtypes_closure t name =
  List.filter
    (fun candidate -> subtype_of t ~sub:candidate ~super:name)
    (interface_names t)

let struct_conforms t name v =
  match (find_interface t name, v) with
  | None, _ -> odl_error "unknown interface %s" name
  | Some _, V.Struct fields ->
      let attrs = attributes_of t name in
      List.length fields = List.length attrs
      && List.for_all
           (fun (attr, ty) ->
             match List.assoc_opt attr fields with
             | None -> false
             | Some x -> (
                 match Otype.to_col_type ty with
                 | Some col -> Disco_relation.Schema.value_conforms col x
                 | None -> true))
           attrs
  | Some _, _ -> false

(* Structural validation of a partition declaration. Shard-repository
   existence is deliberately NOT checked here: sources may register
   lazily, and [discoctl lint] reports unknown shard repositories as
   DISCO-E014. Malformed shapes that no later pass could repair are
   still hard errors. *)
let check_partition t ext (p : Disco_shard.Shard.partition) =
  let n = List.length p.p_shards in
  if n = 0 then odl_error "extent %s is sharded across zero shards" ext.me_name;
  (match p.p_scheme with
  | Disco_shard.Shard.Range bs ->
      if List.length bs <> n - 1 then
        odl_error
          "extent %s: range sharding over %d shards needs %d boundaries, got %d"
          ext.me_name n (n - 1) (List.length bs);
      (* Placement ([range_index]) and pruning ([range_admits]) both
         assume sorted, distinct, mutually comparable boundaries;
         anything else makes them silently disagree, so it is a hard
         error here ([discoctl lint] mirrors the rule as DISCO-E016). *)
      let rec check_sorted = function
        | a :: (b :: _ as rest) ->
            (match V.numeric_compare a b with
            | Some c when c < 0 -> ()
            | Some _ ->
                odl_error
                  "extent %s: range boundaries %s and %s are unsorted or \
                   duplicated"
                  ext.me_name (V.to_string a) (V.to_string b)
            | None ->
                odl_error
                  "extent %s: range boundaries %s and %s are not comparable"
                  ext.me_name (V.to_string a) (V.to_string b));
            check_sorted rest
        | [ _ ] | [] -> ()
      in
      check_sorted bs
  | Disco_shard.Shard.Hash { vnodes } ->
      if vnodes < 1 then
        odl_error "extent %s: hash sharding needs at least 1 vnode" ext.me_name);
  List.iteri
    (fun k shard ->
      (match shard.Disco_shard.Shard.s_wrapper with
      | Some w when not (Hashtbl.mem t.objects w) ->
          odl_error "extent %s shard %d refers to undefined wrapper %s"
            ext.me_name k w
      | _ -> ());
      let child = Disco_shard.Shard.child_name ext.me_name k in
      if find_extent t child <> None then
        odl_error "shard child extent %s of %s collides with an extent" child
          ext.me_name)
    p.p_shards

let shard_child parent k (shard : Disco_shard.Shard.shard) =
  {
    me_name = Disco_shard.Shard.child_name parent.me_name k;
    me_interface = parent.me_interface;
    me_wrapper =
      (match shard.s_wrapper with Some w -> w | None -> parent.me_wrapper);
    me_repository = shard.s_repository;
    me_replicas = [];
    me_map = parent.me_map;
    me_partition = None;
    me_shard_of = Some (parent.me_name, k);
  }

let add_extent t ext =
  if find_extent t ext.me_name <> None then
    odl_error "extent %s already defined" ext.me_name;
  if find_interface t ext.me_interface = None then
    odl_error "extent %s refers to unknown interface %s" ext.me_name
      ext.me_interface;
  if not (Hashtbl.mem t.objects ext.me_wrapper) then
    odl_error "extent %s refers to undefined wrapper %s" ext.me_name
      ext.me_wrapper;
  (match ext.me_partition with
  | None ->
      if not (Hashtbl.mem t.objects ext.me_repository) then
        odl_error "extent %s refers to undefined repository %s" ext.me_name
          ext.me_repository
  | Some p -> check_partition t ext p);
  List.iter
    (fun replica ->
      if not (Hashtbl.mem t.objects replica) then
        odl_error "extent %s refers to undefined replica repository %s"
          ext.me_name replica)
    ext.me_replicas;
  t.extents <- ext :: t.extents;
  (match ext.me_partition with
  | None -> ()
  | Some p ->
      List.iteri
        (fun k shard -> t.extents <- shard_child ext k shard :: t.extents)
        p.p_shards);
  bump t

let is_shard_child e = e.me_shard_of <> None

let shard_children t parent =
  List.rev
    (List.filter
       (fun e ->
         match e.me_shard_of with
         | Some (p, _) -> String.equal p parent
         | None -> false)
       t.extents)

let remove_extent t name =
  let before = List.length t.extents in
  t.extents <-
    List.filter
      (fun e ->
        not
          (String.equal e.me_name name
          || match e.me_shard_of with
             | Some (p, _) -> String.equal p name
             | None -> false))
      t.extents;
  if List.length t.extents <> before then bump t

(* Shard children are implementation detail: enumeration (implicit
   extents, [person*], the metaextent catalog) sees only the parent,
   which expansion rewrites into the union of its children. *)
let extents_of t interface =
  List.rev
    (List.filter
       (fun e ->
         String.equal e.me_interface interface && not (is_shard_child e))
       t.extents)

let extents_of_star t interface =
  let closure = subtypes_closure t interface in
  List.rev
    (List.filter
       (fun e -> List.mem e.me_interface closure && not (is_shard_child e))
       t.extents)

let all_extents t = List.rev t.extents

let metaextent_bag t =
  V.bag
    (List.filter_map
       (fun e ->
         if is_shard_child e then None
         else
           Some
             (V.strct
                [
                  ("name", V.String e.me_name);
                  ("interface", V.String e.me_interface);
                  ("wrapper", V.String e.me_wrapper);
                  ("repository", V.String e.me_repository);
                ]))
       t.extents)

let objects_bag ?(constructor_prefix = "") t =
  let matches ctor =
    let n = String.length constructor_prefix in
    String.length ctor >= n && String.sub ctor 0 n = constructor_prefix
  in
  let entries =
    Hashtbl.fold
      (fun name obj acc ->
        if matches obj.obj_constructor then
          V.strct
            ([
               ("name", V.String name);
               ("constructor", V.String obj.obj_constructor);
             ]
            @ List.filter
                (fun (k, _) -> k <> "name" && k <> "constructor")
                obj.obj_args)
          :: acc
        else acc)
      t.objects []
  in
  V.bag entries

let add_object t ~name ~constructor ~args =
  if Hashtbl.mem t.objects name then odl_error "object %s already defined" name;
  let obj =
    {
      obj_oid = { V.oid_id = t.next_oid; oid_class = constructor };
      obj_constructor = constructor;
      obj_args = args;
    }
  in
  t.next_oid <- t.next_oid + 1;
  Hashtbl.replace t.objects name obj;
  bump t;
  obj

let find_object t name = Hashtbl.find_opt t.objects name

let object_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.objects [] |> List.sort String.compare

let add_view t ~name ~body =
  if Hashtbl.mem t.views name then odl_error "view %s already defined" name;
  if find_extent t name <> None then
    odl_error "view %s collides with an extent name" name;
  Hashtbl.replace t.views name body;
  t.view_order <- name :: t.view_order;
  bump t

let find_view t name = Hashtbl.find_opt t.views name
let view_names t = List.rev t.view_order
let version t = t.version
