module V = Disco_value.Value
module Lexer = Disco_lex.Lexer
module Stream = Disco_lex.Lexer.Stream
module Shard = Disco_shard.Shard

type statement =
  | Interface_def of Registry.interface
  | Extent_def of Registry.meta_extent
  | Object_def of {
      od_name : string;
      od_constructor : string;
      od_args : (string * V.t) list;
    }
  | View_def of { vd_name : string; vd_body : string }
  | Drop_extent of string

(* Includes the OQL operator tokens so that [define ... as <OQL>] bodies
   tokenize (they are captured as raw text and recompiled by the OQL
   layer). *)
let puncts =
  [
    ":="; "{"; "}"; "("; ")"; ";"; ":"; ","; "<="; ">="; "!="; "<>"; "=";
    "<"; ">"; "."; "*"; "+"; "-"; "/"; "%";
  ]

let parse_type s =
  let name = Stream.ident s in
  match Otype.of_odl_name name with
  | Some ty -> ty
  | None -> Otype.TInterface name

let parse_interface s =
  (* after the [interface] keyword *)
  let name = Stream.ident s in
  let declared_extent =
    if Stream.try_punct s "(" then (
      Stream.eat_kw s "extent";
      let e = Stream.ident s in
      Stream.eat_punct s ")";
      Some e)
    else None
  in
  let super = if Stream.try_punct s ":" then Some (Stream.ident s) else None in
  Stream.eat_punct s "{";
  let rec attrs acc =
    if Stream.try_punct s "}" then List.rev acc
    else (
      Stream.eat_kw s "attribute";
      let ty = parse_type s in
      let attr_name = Stream.ident s in
      Stream.eat_punct s ";";
      attrs ((attr_name, ty) :: acc))
  in
  let attributes = attrs [] in
  ignore (Stream.try_punct s ";");
  Interface_def
    {
      Registry.if_name = name;
      if_super = super;
      if_declared_extent = declared_extent;
      if_attributes = attributes;
    }

let parse_literal s =
  match Stream.next s with
  | Lexer.Str str -> V.String str
  | Lexer.Int i -> V.Int i
  | Lexer.Float f -> V.Float f
  | Lexer.Ident id when String.lowercase_ascii id = "true" -> V.Bool true
  | Lexer.Ident id when String.lowercase_ascii id = "false" -> V.Bool false
  | Lexer.Ident id when String.lowercase_ascii id = "null" -> V.Null
  | t -> Stream.failf s "expected a literal, found %s" (Lexer.token_to_string t)

(* [sharded by KEY range (lit, ...) across r0 r1 ...]
   or [sharded by KEY hash [vnodes N] across r0 [: w] r1 ...] *)
let parse_shard_clause s =
  Stream.eat_kw s "by";
  let key = Stream.ident s in
  let scheme =
    if Stream.try_kw s "range" then (
      Stream.eat_punct s "(";
      let rec lits acc =
        if Stream.try_punct s ")" then List.rev acc
        else
          let acc = parse_literal s :: acc in
          if Stream.try_punct s "," then lits acc
          else (
            Stream.eat_punct s ")";
            List.rev acc)
      in
      Shard.Range (lits []))
    else if Stream.try_kw s "hash" then
      let vnodes =
        if Stream.try_kw s "vnodes" then
          match Stream.next s with
          | Lexer.Int n -> n
          | t ->
              Stream.failf s "expected a vnode count, found %s"
                (Lexer.token_to_string t)
        else Shard.default_vnodes
      in
      Shard.Hash { vnodes }
    else Stream.failf s "expected 'range' or 'hash' after 'sharded by %s'" key
  in
  Stream.eat_kw s "across";
  let rec shards acc =
    match Stream.peek s with
    | Some (Lexer.Ident id) when id <> "map" && id <> "replica" ->
        ignore (Stream.next s);
        let w = if Stream.try_punct s ":" then Some (Stream.ident s) else None in
        shards ({ Shard.s_repository = id; s_wrapper = w } :: acc)
    | _ -> List.rev acc
  in
  match shards [] with
  | [] -> Stream.failf s "sharded clause needs at least one shard repository"
  | shard_list -> { Shard.p_key = key; p_scheme = scheme; p_shards = shard_list }

let parse_extent s =
  (* after the [extent] keyword *)
  let name = Stream.ident s in
  Stream.eat_kw s "of";
  let interface = Stream.ident s in
  Stream.eat_kw s "wrapper";
  let wrapper = Stream.ident s in
  let partition =
    if Stream.try_kw s "sharded" then Some (parse_shard_clause s) else None
  in
  let repository =
    match partition with
    | Some p -> (List.hd p.Shard.p_shards).Shard.s_repository
    | None ->
        Stream.eat_kw s "repository";
        Stream.ident s
  in
  let rec replicas acc =
    if Stream.try_kw s "replica" then replicas (Stream.ident s :: acc)
    else List.rev acc
  in
  let replicas = replicas [] in
  let map =
    if Stream.try_kw s "map" then Typemap.parse_body s else Typemap.identity
  in
  Stream.eat_punct s ";";
  Extent_def
    {
      Registry.me_name = name;
      me_interface = interface;
      me_wrapper = wrapper;
      me_repository = repository;
      me_replicas = replicas;
      me_map = map;
      me_partition = partition;
      me_shard_of = None;
    }

let parse_object name s =
  (* after [name :=] *)
  let constructor = Stream.ident s in
  Stream.eat_punct s "(";
  let rec args acc =
    if Stream.try_punct s ")" then List.rev acc
    else
      let field = Stream.ident s in
      Stream.eat_punct s "=";
      let v = parse_literal s in
      let acc = (field, v) :: acc in
      if Stream.try_punct s "," then args acc
      else (
        Stream.eat_punct s ")";
        List.rev acc)
  in
  let args = args [] in
  Stream.eat_punct s ";";
  Object_def { od_name = name; od_constructor = constructor; od_args = args }

(* [define name as <raw OQL> ;] — the body runs to the first semicolon at
   paren depth 0, captured as raw text from the original input. *)
let parse_define input s =
  let name = Stream.ident s in
  Stream.eat_kw s "as";
  let body_start = Stream.pos s in
  let rec scan depth last_end =
    match Stream.peek s with
    | None -> Stream.failf s "unterminated define %s: expected ';'" name
    | Some (Lexer.Punct "(") ->
        ignore (Stream.next s);
        scan (depth + 1) (Stream.pos s)
    | Some (Lexer.Punct ")") ->
        ignore (Stream.next s);
        scan (depth - 1) (Stream.pos s)
    | Some (Lexer.Punct ";") when depth = 0 ->
        let body_end = Stream.pos s in
        ignore (Stream.next s);
        body_end
    | Some _ ->
        ignore (Stream.next s);
        scan depth last_end
  in
  let body_end = scan 0 body_start in
  let body = String.trim (String.sub input body_start (body_end - body_start)) in
  View_def { vd_name = name; vd_body = body }

let parse_statement input s =
  if Stream.try_kw s "interface" then parse_interface s
  else if Stream.try_kw s "extent" then parse_extent s
  else if Stream.try_kw s "define" then parse_define input s
  else if Stream.try_kw s "drop" then (
    Stream.eat_kw s "extent";
    let name = Stream.ident s in
    Stream.eat_punct s ";";
    Drop_extent name)
  else
    let name = Stream.ident s in
    Stream.eat_punct s ":=";
    parse_object name s

let parse_program input =
  let s = Stream.of_string ~puncts input in
  let rec go acc =
    if Stream.at_end s then List.rev acc
    else go (parse_statement input s :: acc)
  in
  go []

let apply registry = function
  | Interface_def itf -> Registry.add_interface registry itf
  | Extent_def ext -> Registry.add_extent registry ext
  | Object_def { od_name; od_constructor; od_args } ->
      ignore
        (Registry.add_object registry ~name:od_name ~constructor:od_constructor
           ~args:od_args)
  | View_def { vd_name; vd_body } ->
      Registry.add_view registry ~name:vd_name ~body:vd_body
  | Drop_extent name -> Registry.remove_extent registry name

let load registry input =
  List.iter (apply registry) (parse_program input)

let pp_statement ppf = function
  | Interface_def itf ->
      let pp_super ppf = function
        | Some s -> Fmt.pf ppf " : %s" s
        | None -> ()
      in
      let pp_ext ppf = function
        | Some e -> Fmt.pf ppf " (extent %s)" e
        | None -> ()
      in
      let pp_attr ppf (name, ty) =
        Fmt.pf ppf "attribute %a %s;" Otype.pp ty name
      in
      Fmt.pf ppf "interface %s%a%a { %a }" itf.Registry.if_name pp_ext
        itf.Registry.if_declared_extent pp_super itf.Registry.if_super
        (Fmt.list ~sep:Fmt.sp pp_attr)
        itf.Registry.if_attributes
  | Extent_def e ->
      let pp_placement ppf e =
        match e.Registry.me_partition with
        | Some p -> Shard.pp ppf p
        | None -> Fmt.pf ppf "repository %s" e.Registry.me_repository
      in
      Fmt.pf ppf "extent %s of %s wrapper %s %a%a%a;" e.Registry.me_name
        e.Registry.me_interface e.Registry.me_wrapper pp_placement e
        (fun ppf -> List.iter (fun r -> Fmt.pf ppf " replica %s" r))
        e.Registry.me_replicas
        (fun ppf m ->
          if m == Typemap.identity then () else Fmt.pf ppf " map %a" Typemap.pp m)
        e.Registry.me_map
  | Object_def { od_name; od_constructor; od_args } ->
      let pp_arg ppf (k, v) = Fmt.pf ppf "%s=%a" k V.pp v in
      Fmt.pf ppf "%s := %s(%a);" od_name od_constructor
        (Fmt.list ~sep:(Fmt.any ", ") pp_arg)
        od_args
  | View_def { vd_name; vd_body } ->
      Fmt.pf ppf "define %s as %s;" vd_name vd_body
  | Drop_extent name -> Fmt.pf ppf "drop extent %s;" name
