module V = Disco_value.Value
module Lexer = Disco_lex.Lexer
module Stream = Disco_lex.Lexer.Stream

type field_equiv = {
  fe_src : string;
  fe_med : string;
  fe_scale : float;
  fe_offset : float;
}

type t = {
  collection : (string * string) option;  (* (source, mediator) *)
  fields : field_equiv list;
}

exception Map_error of string

let map_error fmt = Format.kasprintf (fun s -> raise (Map_error s)) fmt
let identity = { collection = None; fields = [] }

let check_unique side names =
  let sorted = List.sort String.compare names in
  let rec go = function
    | a :: (b :: _ as rest) ->
        if String.equal a b then map_error "duplicate %s name %s in map" side a
        else go rest
    | [ _ ] | [] -> ()
  in
  go sorted

let make_ext ?collection fields =
  check_unique "source" (List.map (fun f -> f.fe_src) fields);
  check_unique "mediator" (List.map (fun f -> f.fe_med) fields);
  List.iter
    (fun f ->
      if f.fe_scale <= 0.0 then
        map_error "field %s: scale must be positive" f.fe_med)
    fields;
  { collection; fields }

let plain src med = { fe_src = src; fe_med = med; fe_scale = 1.0; fe_offset = 0.0 }

let make ?collection fields =
  make_ext ?collection (List.map (fun (src, med) -> plain src med) fields)

let collection t = t.collection
let field_pairs t = List.map (fun f -> (f.fe_src, f.fe_med)) t.fields
let field_equivs t = t.fields

let source_collection t name =
  match t.collection with
  | Some (src, med) when String.equal med name -> src
  | _ -> name

let find_by_med t name =
  List.find_opt (fun f -> String.equal f.fe_med name) t.fields

let find_by_src t name =
  List.find_opt (fun f -> String.equal f.fe_src name) t.fields

let source_field t name =
  match find_by_med t name with Some f -> f.fe_src | None -> name

let mediator_field t name =
  match find_by_src t name with Some f -> f.fe_med | None -> name

let is_identity_transform f = f.fe_scale = 1.0 && f.fe_offset = 0.0

let transform_of_mediator_field t name =
  match find_by_med t name with
  | Some f when not (is_identity_transform f) ->
      Some (f.fe_src, f.fe_scale, f.fe_offset)
  | _ -> None

let apply_transform f v =
  if is_identity_transform f then v
  else
    let integral = Float.is_integer f.fe_scale && Float.is_integer f.fe_offset in
    match v with
    | V.Int i when integral ->
        V.Int ((i * int_of_float f.fe_scale) + int_of_float f.fe_offset)
    | V.Int i -> V.Float ((float_of_int i *. f.fe_scale) +. f.fe_offset)
    | V.Float x -> V.Float ((x *. f.fe_scale) +. f.fe_offset)
    | other -> other

let convert_value_to_mediator t ~source_field v =
  match find_by_src t source_field with
  | Some f -> apply_transform f v
  | None -> v

let rec rename_struct_to_mediator t v =
  match v with
  | V.Struct fields ->
      V.strct
        (List.map
           (fun (n, x) ->
             match find_by_src t n with
             | Some f -> (f.fe_med, apply_transform f x)
             | None -> (n, x))
           fields)
  | V.Bag _ | V.Set _ | V.List _ ->
      V.map_elements (rename_struct_to_mediator t) v
  | other -> other

let compose_flat outer inner =
  (* mediator name --inner--> intermediate name --outer--> source name;
     values: med = inner(mid) = inner_scale * (outer_scale * src +
     outer_offset) + inner_offset *)
  let collection =
    match (inner.collection, outer.collection) with
    | None, None -> None
    | Some (src, med), None -> Some (src, med)
    | None, Some (src, med) -> Some (src, med)
    | Some (_, med), Some (src, _) -> Some (src, med)
  in
  let fields =
    List.map
      (fun inner_f ->
        match find_by_med outer inner_f.fe_src with
        | Some outer_f ->
            {
              fe_src = outer_f.fe_src;
              fe_med = inner_f.fe_med;
              fe_scale = inner_f.fe_scale *. outer_f.fe_scale;
              fe_offset =
                (inner_f.fe_scale *. outer_f.fe_offset) +. inner_f.fe_offset;
            }
        | None -> inner_f)
      inner.fields
    @ List.filter
        (fun outer_f ->
          not
            (List.exists
               (fun inner_f -> String.equal inner_f.fe_src outer_f.fe_med)
               inner.fields))
        outer.fields
  in
  make_ext ?collection fields

let pp_number ppf x =
  if Float.is_integer x then Fmt.pf ppf "%d" (int_of_float x)
  else Fmt.pf ppf "%g" x

let pp ppf t =
  let pp_collection ppf (src, med) = Fmt.pf ppf "(%s=%s)" src med in
  let pp_field ppf f =
    if is_identity_transform f then Fmt.pf ppf "(%s=%s)" f.fe_src f.fe_med
    else if f.fe_offset = 0.0 then
      Fmt.pf ppf "(%s*%a=%s)" f.fe_src pp_number f.fe_scale f.fe_med
    else
      Fmt.pf ppf "(%s*%a+%a=%s)" f.fe_src pp_number f.fe_scale pp_number
        f.fe_offset f.fe_med
  in
  let pp_entries ppf () =
    (match t.collection with
    | Some c ->
        pp_collection ppf c;
        if t.fields <> [] then Fmt.string ppf ","
    | None -> ());
    Fmt.list ~sep:(Fmt.any ",") pp_field ppf t.fields
  in
  Fmt.pf ppf "(%a)" pp_entries ()

let parse_number s =
  match Stream.next s with
  | Lexer.Int i -> float_of_int i
  | Lexer.Float f -> f
  | t -> Stream.failf s "expected a number in map, found %s" (Lexer.token_to_string t)

let parse_body s =
  Stream.eat_punct s "(";
  let rec entries acc =
    Stream.eat_punct s "(";
    let src = Stream.ident s in
    let scale = if Stream.try_punct s "*" then parse_number s else 1.0 in
    let offset = if Stream.try_punct s "+" then parse_number s else 0.0 in
    Stream.eat_punct s "=";
    let med = Stream.ident s in
    Stream.eat_punct s ")";
    let acc = { fe_src = src; fe_med = med; fe_scale = scale; fe_offset = offset } :: acc in
    if Stream.try_punct s "," then entries acc else List.rev acc
  in
  let all = entries [] in
  Stream.eat_punct s ")";
  (* The paper writes the collection equivalence first; it never carries a
     transform. *)
  match all with
  | [] -> identity
  | first :: rest ->
      if not (is_identity_transform first) then
        map_error "the collection equivalence cannot carry a transform";
      make_ext ~collection:(first.fe_src, first.fe_med) rest
