(** Local transformation maps (paper Section 2.2.2).

    A map resolves the conflict between a mediator type and a data-source
    type by listing name equivalences: one optional equivalence between
    the data-source collection name and the mediator extent name, and one
    per field. In the paper's syntax,

    {v map ((person0=personprime0),(name=n),(salary=s)) v}

    associates source collection [person0] with extent [personprime0] and
    source fields [name]/[salary] with mediator fields [n]/[s]. The
    mediator applies the map to queries before passing them to wrappers
    (mediator names → source names), and wrappers apply the inverse to
    answers (source names → mediator names).

    {b Value conversions.} Section 6.2's closing example — "the mediator
    models salaries as yearly values, but the data sources model salaries
    as weekly values" — is supported by affine transforms on field
    equivalences:

    {v map ((person0=pp0),(name=n),(salary*52=s)) v}

    declares that mediator field [s] equals source field [salary] × 52
    (optionally [+ offset]). The mediator rewrites references to [s] in
    pushed queries into the matching source arithmetic, and answers are
    converted on the way back. Scales must be positive (so comparisons
    keep their direction). *)

module V := Disco_value.Value

type t

(** One field equivalence: mediator [fe_med] = source [fe_src] ×
    [fe_scale] + [fe_offset]. *)
type field_equiv = {
  fe_src : string;
  fe_med : string;
  fe_scale : float;  (** must be positive *)
  fe_offset : float;
}

exception Map_error of string

val identity : t
(** The empty map: all names coincide. *)

val make : ?collection:string * string -> (string * string) list -> t
(** [make ?collection fields]: each pair is [(source_name, mediator_name)],
    matching the paper's [source=mediator] orientation. Raises
    {!Map_error} if either side contains duplicates. *)

val make_ext : ?collection:string * string -> field_equiv list -> t
(** Full form with value transforms. Raises {!Map_error} on duplicates or
    non-positive scales. *)

val collection : t -> (string * string) option
val field_pairs : t -> (string * string) list
val field_equivs : t -> field_equiv list

val source_collection : t -> string -> string
(** Translate a mediator extent name to the source collection name
    (identity when unmapped). *)

val source_field : t -> string -> string
(** Mediator field name → source field name. *)

val mediator_field : t -> string -> string
(** Source field name → mediator field name. *)

val transform_of_mediator_field : t -> string -> (string * float * float) option
(** [(source_field, scale, offset)] when the mediator field has a
    non-identity value transform. *)

val convert_value_to_mediator : t -> source_field:string -> V.t -> V.t
(** Apply the field's transform to a source value ([Int] stays [Int] when
    the transform is integral; otherwise widens to [Float]). Non-numeric
    and [Null] values pass through. *)

val rename_struct_to_mediator : t -> V.t -> V.t
(** Rewrite the field names of a struct (or of every struct in a
    collection) from source names to mediator names, converting values
    through their transforms — the answer reformatting a wrapper
    performs. *)

val compose_flat : t -> t -> t
(** [compose_flat outer inner] chains two flat maps (mediator → inner
    source names → outer source names); transforms compose. Used when a
    mediator is itself wrapped as a data source. *)

val pp : Format.formatter -> t -> unit
(** Prints in the paper's [(a=b),(c*52=d)] syntax. *)

val parse_body : Disco_lex.Lexer.Stream.t -> t
(** Parse the parenthesized list form
    [((person0=pp0),(name=n),(salary*52=s))] from a token stream
    positioned at the opening parenthesis; the first pair names the
    collection equivalence (the paper's convention). *)
