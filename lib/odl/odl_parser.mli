(** Parser for ODL with the DISCO extensions (paper Section 2).

    Accepted statement forms, each terminated by [;] except interface
    blocks which end at their closing brace (an optional [;] is allowed):

    {v
    interface Person (extent person) {
      attribute String name;
      attribute Short salary; }
    interface Student : Person { }
    extent person0 of Person wrapper w0 repository r0;
    extent pp0 of PersonPrime wrapper w0 repository r0
      map ((person0=pp0),(name=n),(salary=s));
    r0 := Repository(host="rodin", name="db", address="123.45.6.7");
    w0 := WrapperPostgres();
    define double as select ... ;
    drop extent person0;
    v}

    The body of a [define] is captured as raw OQL text (compiled later by
    the OQL layer), so the full query language is available in views. *)

module V := Disco_value.Value

type statement =
  | Interface_def of Registry.interface
  | Extent_def of Registry.meta_extent
  | Object_def of {
      od_name : string;
      od_constructor : string;
      od_args : (string * V.t) list;
    }
  | View_def of { vd_name : string; vd_body : string }
  | Drop_extent of string

val parse_program : string -> statement list
(** Raises [Disco_lex.Lexer.Error] on malformed input. *)

val apply : Registry.t -> statement -> unit
(** Record a statement in the registry. Raises [Registry.Odl_error] on
    semantic errors (duplicate names, unknown references...). *)

val load : Registry.t -> string -> unit
(** Parse and apply a whole program. *)

val pp_statement : Format.formatter -> statement -> unit
