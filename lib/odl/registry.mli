(** The mediator's internal schema database (paper Section 3: "The DISCO
    mediator contains an internal database [that] records information on
    data sources, types, interfaces, and views").

    It holds interface definitions with their subtype hierarchy, the
    [MetaExtent] instances that attach extents to interfaces (Section
    2.1), named objects such as repositories and wrappers (data sources
    are first-class objects), and view definitions. A monotone version
    counter supports plan-cache invalidation ("the mediator must monitor
    updates to extents, and modify or recompute plans that are affected",
    Section 3.3). *)

module V := Disco_value.Value

(** An interface (type signature) of the mediator schema. *)
type interface = {
  if_name : string;
  if_super : string option;
  if_declared_extent : string option;
      (** the implicit all-sources extent, e.g. [person] for [Person] *)
  if_attributes : (string * Otype.t) list;  (** own attributes only *)
}

(** One [MetaExtent] instance: an extent mirroring one data source
    (Section 2.1's [interface MetaExtent]). *)
type meta_extent = {
  me_name : string;  (** extent name, e.g. [person0] *)
  me_interface : string;  (** mediator type, e.g. [Person] *)
  me_wrapper : string;  (** name of the wrapper object *)
  me_repository : string;  (** name of the primary repository object *)
  me_replicas : string list;
      (** failover repositories holding the same data (an extension: the
          paper scopes its §4 semantics to "the absence of replication";
          replicas restore availability at the cost of maintaining
          copies — experiment E10 contrasts the two remedies) *)
  me_map : Typemap.t;  (** local transformation map *)
  me_partition : Disco_shard.Shard.partition option;
      (** [Some p] makes this a {e partitioned} extent: its tuples live
          in [p.p_shards] shard sources and {!add_extent} registers one
          child extent per shard ([person__s0], ...). Expansion rewrites
          the parent into the union of its children; the parent itself
          never executes (its [me_repository] is shard 0's, for
          uniformity only). *)
  me_shard_of : (string * int) option;
      (** [Some (parent, k)] marks an auto-registered shard child:
          shard [k] of partitioned extent [parent]. Children are
          excluded from {!extents_of}, {!extents_of_star} and
          {!metaextent_bag} but visible to {!find_extent} (bindings,
          residual queries). *)
}

(** A named mediator object created by an ODL assignment such as
    [r0 := Repository(host="rodin", ...)]. *)
type obj = { obj_oid : V.oid; obj_constructor : string; obj_args : (string * V.t) list }

type t

exception Odl_error of string

val create : unit -> t

(** {1 Interfaces} *)

val add_interface : t -> interface -> unit
(** Raises {!Odl_error} on duplicate interface names, unknown supertypes,
    duplicate attribute names (including inherited ones), or a declared
    extent name that collides with an existing extent. *)

val find_interface : t -> string -> interface option
val interface_names : t -> string list

val attributes_of : t -> string -> (string * Otype.t) list
(** Own and inherited attributes, supertype attributes first. Raises
    {!Odl_error} on unknown interfaces. *)

val subtype_of : t -> sub:string -> super:string -> bool
(** Reflexive-transitive subtype test. *)

val subtypes_closure : t -> string -> string list
(** The interface and all its (transitive) subtypes. *)

val struct_conforms : t -> string -> V.t -> bool
(** Does a struct value carry exactly the fields (with conforming atomic
    values) of the named interface? Used by wrappers for the run-time
    type check of Section 2.1. *)

(** {1 Extents} *)

val add_extent : t -> meta_extent -> unit
(** Raises {!Odl_error} if the extent name is taken, the interface is
    unknown, or the wrapper / repository objects are undefined. For a
    partitioned extent ([me_partition = Some p]) the per-shard
    repositories are {e not} required to exist yet (sources register
    lazily; [discoctl lint] reports unknown shard repositories), but
    structural defects — zero shards, wrong range-boundary count,
    [vnodes < 1], undefined per-shard wrapper overrides, child-name
    collisions — still raise. One child extent per shard is registered
    automatically. *)

val remove_extent : t -> string -> unit
(** Removing a partitioned extent also removes its shard children. *)

val find_extent : t -> string -> meta_extent option

val shard_children : t -> string -> meta_extent list
(** The auto-registered shard children of a partitioned extent, in shard
    order; [[]] for unpartitioned or unknown extents. *)

val extents_of : t -> string -> meta_extent list
(** Extents attached {e directly} to the interface, in definition order —
    Section 2.2.1: "the extent of a type does not automatically reference
    the extents of the sub-types". *)

val extents_of_star : t -> string -> meta_extent list
(** Extents of the interface and of all its subtypes — the paper's
    [person*] syntax. *)

val all_extents : t -> meta_extent list

val metaextent_bag : t -> V.t
(** The [metaextent] extent itself, as a bag of structs with fields
    [name], [interface], [wrapper], [repository] — so that OQL queries can
    range over the meta-data exactly as in the paper's
    [define person as flatten(select x.e from x in metaextent ...)]. *)

val objects_bag : ?constructor_prefix:string -> t -> V.t
(** The mediator objects as a queryable bag of structs with fields
    [name], [constructor], and one string field per constructor argument
    — the paper's [Repository] / [Wrapper] ODMG interfaces made
    queryable. [constructor_prefix] filters (e.g. ["Repository"],
    ["Wrapper"]). *)

(** {1 Objects} *)

val add_object : t -> name:string -> constructor:string -> args:(string * V.t) list -> obj
(** Raises {!Odl_error} on duplicate names. *)

val find_object : t -> string -> obj option
val object_names : t -> string list

(** {1 Views} *)

val add_view : t -> name:string -> body:string -> unit
(** [body] is unparsed OQL text; the OQL layer compiles it on demand.
    Raises {!Odl_error} on duplicate view names or name clashes with
    extents. *)

val find_view : t -> string -> string option
val view_names : t -> string list

(** {1 Versioning} *)

val version : t -> int
(** Bumped by every mutation. *)
