module V = Disco_value.Value

type arith = Add | Sub | Mul | Div | Mod
type cmp = Eq | Ne | Lt | Le | Gt | Ge | Like

type scalar =
  | Attr of string list
  | Const of V.t
  | Arith of arith * scalar * scalar

type pred =
  | True
  | Cmp of cmp * scalar * scalar
  | Member of scalar * V.t
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type head = Hstruct of (string * scalar) list | Hscalar of scalar

type expr =
  | Get of string
  | Data of V.t
  | Select of expr * pred
  | Project of expr * string list
  | Map of expr * head
  | Join of expr * expr * (string list * string list) list
  | Union of expr list
  | Distinct of expr
  | Submit of string * expr

type op_name = Oget | Oselect | Oproject | Omap | Ojoin | Ounion | Odistinct

let op_name_string = function
  | Oget -> "get"
  | Oselect -> "select"
  | Oproject -> "project"
  | Omap -> "map"
  | Ojoin -> "join"
  | Ounion -> "union"
  | Odistinct -> "distinct"

let top_op = function
  | Get _ -> Some Oget
  | Select _ -> Some Oselect
  | Project _ -> Some Oproject
  | Map _ -> Some Omap
  | Join _ -> Some Ojoin
  | Union _ -> Some Ounion
  | Distinct _ -> Some Odistinct
  | Data _ | Submit _ -> None

exception Algebra_error of string

let algebra_error fmt = Format.kasprintf (fun s -> raise (Algebra_error s)) fmt

(* -- printing: the paper's prefix notation -- *)

let arith_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "mod"

let cmp_name = function
  | Eq -> "="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Like -> "like"

let pp_path ppf = function
  | [] -> Fmt.string ppf "@elem"
  | path -> Fmt.string ppf (String.concat "." path)

let rec pp_scalar ppf = function
  | Attr path -> pp_path ppf path
  | Const v -> V.pp ppf v
  | Arith (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" pp_scalar a (arith_name op) pp_scalar b

let rec pp_pred ppf = function
  | True -> Fmt.string ppf "true"
  | Cmp (op, a, b) -> Fmt.pf ppf "%a %s %a" pp_scalar a (cmp_name op) pp_scalar b
  | Member (a, keys) -> Fmt.pf ppf "%a in %a" pp_scalar a V.pp keys
  | And (a, b) -> Fmt.pf ppf "(%a and %a)" pp_pred a pp_pred b
  | Or (a, b) -> Fmt.pf ppf "(%a or %a)" pp_pred a pp_pred b
  | Not a -> Fmt.pf ppf "not(%a)" pp_pred a

let pp_head ppf = function
  | Hscalar s -> pp_scalar ppf s
  | Hstruct fields ->
      let pp_field ppf (n, s) = Fmt.pf ppf "%s: %a" n pp_scalar s in
      Fmt.pf ppf "struct(%a)" (Fmt.list ~sep:(Fmt.any ", ") pp_field) fields

let rec pp ppf = function
  | Get name -> Fmt.pf ppf "get(%s)" name
  | Data v -> Fmt.pf ppf "data(%a)" V.pp v
  | Select (e, p) -> Fmt.pf ppf "select(%a, %a)" pp_pred p pp e
  | Project (e, attrs) ->
      Fmt.pf ppf "project(%a, %a)"
        (Fmt.list ~sep:(Fmt.any ",") Fmt.string)
        attrs pp e
  | Map (e, h) -> Fmt.pf ppf "map(%a, %a)" pp_head h pp e
  | Join (l, r, pairs) ->
      let pp_pair ppf (a, b) = Fmt.pf ppf "%a=%a" pp_path a pp_path b in
      Fmt.pf ppf "join(%a, %a, %a)" pp l pp r
        (Fmt.list ~sep:(Fmt.any ",") pp_pair)
        pairs
  | Union es -> Fmt.pf ppf "union(%a)" (Fmt.list ~sep:(Fmt.any ", ") pp) es
  | Distinct e -> Fmt.pf ppf "distinct(%a)" pp e
  | Submit (repo, e) -> Fmt.pf ppf "submit(%s, %a)" repo pp e

let to_string e = Fmt.str "%a" pp e
let equal (a : expr) (b : expr) = a = b

let rec scalar_size = function
  | Attr _ | Const _ -> 1
  | Arith (_, a, b) -> 1 + scalar_size a + scalar_size b

let rec pred_size = function
  | True -> 1
  | Cmp (_, a, b) -> 1 + scalar_size a + scalar_size b
  | Member (a, _) -> 1 + scalar_size a
  | And (a, b) | Or (a, b) -> 1 + pred_size a + pred_size b
  | Not a -> 1 + pred_size a

let head_size = function
  | Hscalar s -> scalar_size s
  | Hstruct fields ->
      List.fold_left (fun acc (_, s) -> acc + scalar_size s) 1 fields

let rec size = function
  | Get _ | Data _ -> 1
  | Select (e, p) -> 1 + size e + pred_size p
  | Project (e, attrs) -> 1 + size e + List.length attrs
  | Map (e, h) -> 1 + size e + head_size h
  | Join (l, r, pairs) -> 1 + size l + size r + List.length pairs
  | Union es -> List.fold_left (fun acc e -> acc + size e) 1 es
  | Distinct e -> 1 + size e
  | Submit (_, e) -> 1 + size e

(* -- structure -- *)

let rec binding_vars = function
  | Map (_, Hstruct fields) -> Some (List.map fst fields)
  | Map (_, Hscalar _) -> None
  | Join (l, r, _) -> (
      match (binding_vars l, binding_vars r) with
      | Some a, Some b -> Some (a @ b)
      | _ -> None)
  | Select (e, _) | Submit (_, e) | Distinct e -> binding_vars e
  | Union (e :: _) -> binding_vars e
  | Data (V.Bag (V.Struct fields :: _))
  | Data (V.Set (V.Struct fields :: _))
  | Data (V.List (V.Struct fields :: _)) ->
      (* materialized collections expose their element fields, so a
         partially evaluated join still decompiles (Section 4) *)
      Some (List.map fst fields)
  | Data (V.Bag [] | V.Set [] | V.List []) -> Some []
  | Union [] | Get _ | Data _ | Project (_, _) -> None

let rec submits = function
  | Submit (repo, e) -> (repo, e) :: submits e
  | Get _ | Data _ -> []
  | Select (e, _) | Project (e, _) | Map (e, _) | Distinct e -> submits e
  | Join (l, r, _) -> submits l @ submits r
  | Union es -> List.concat_map submits es

let rec gets = function
  | Get name -> [ name ]
  | Data _ -> []
  | Select (e, _) | Project (e, _) | Map (e, _) | Distinct e | Submit (_, e) ->
      gets e
  | Join (l, r, _) -> gets l @ gets r
  | Union es -> List.concat_map gets es

let rec map_submits f = function
  | Submit (repo, e) -> f repo e
  | (Get _ | Data _) as e -> e
  | Select (e, p) -> Select (map_submits f e, p)
  | Project (e, attrs) -> Project (map_submits f e, attrs)
  | Map (e, h) -> Map (map_submits f e, h)
  | Distinct e -> Distinct (map_submits f e)
  | Join (l, r, pairs) -> Join (map_submits f l, map_submits f r, pairs)
  | Union es -> Union (List.map (map_submits f) es)

let rec scalar_paths = function
  | Attr p -> [ p ]
  | Const _ -> []
  | Arith (_, a, b) -> scalar_paths a @ scalar_paths b

let rec pred_paths = function
  | True -> []
  | Cmp (_, a, b) -> scalar_paths a @ scalar_paths b
  | Member (a, _) -> scalar_paths a
  | And (a, b) | Or (a, b) -> pred_paths a @ pred_paths b
  | Not a -> pred_paths a

let prefix_heads p =
  let paths = pred_paths p in
  if List.exists (fun path -> path = []) paths then None
  else Some (List.sort_uniq String.compare (List.map List.hd paths))

(* -- evaluation -- *)

let rec get_path v = function
  | [] -> v
  | field :: rest -> get_path (V.field v field) rest

let arith_eval op a b =
  match (a, b) with
  | V.Null, _ | _, V.Null -> V.Null
  | V.Int x, V.Int y -> (
      match op with
      | Add -> V.Int (x + y)
      | Sub -> V.Int (x - y)
      | Mul -> V.Int (x * y)
      | Div -> if y = 0 then algebra_error "division by zero" else V.Int (x / y)
      | Mod -> if y = 0 then algebra_error "modulo by zero" else V.Int (x mod y))
  | V.String x, V.String y when op = Add -> V.String (x ^ y)
  | (V.Int _ | V.Float _), (V.Int _ | V.Float _) -> (
      let x = V.to_float a and y = V.to_float b in
      match op with
      | Add -> V.Float (x +. y)
      | Sub -> V.Float (x -. y)
      | Mul -> V.Float (x *. y)
      | Div ->
          if y = 0.0 then algebra_error "division by zero" else V.Float (x /. y)
      | Mod -> algebra_error "modulo of floats")
  | _ -> algebra_error "arithmetic on %s and %s" (V.type_name a) (V.type_name b)

let rec eval_scalar elem = function
  | Attr path -> (
      try get_path elem path
      with V.Type_error m -> algebra_error "%s" m)
  | Const v -> v
  | Arith (op, a, b) -> arith_eval op (eval_scalar elem a) (eval_scalar elem b)

let rec eval_pred elem = function
  | True -> true
  | Member (a, keys) ->
      let v = eval_scalar elem a in
      List.exists
        (fun k -> match V.numeric_compare v k with Some 0 -> true | _ -> false)
        (V.elements keys)
  | Cmp (Like, a, b) -> (
      match (eval_scalar elem a, eval_scalar elem b) with
      | V.String s, V.String pattern -> V.like_match ~pattern s
      | V.Null, _ | _, V.Null -> false
      | va, vb ->
          algebra_error "like requires strings, got %s and %s" (V.type_name va)
            (V.type_name vb))
  | Cmp (op, a, b) -> (
      let va = eval_scalar elem a and vb = eval_scalar elem b in
      match V.numeric_compare va vb with
      | None ->
          algebra_error "cannot compare %s with %s" (V.type_name va)
            (V.type_name vb)
      | Some c -> (
          match op with
          | Eq -> c = 0
          | Ne -> c <> 0
          | Lt -> c < 0
          | Le -> c <= 0
          | Gt -> c > 0
          | Ge -> c >= 0
          | Like -> assert false))
  | And (a, b) -> eval_pred elem a && eval_pred elem b
  | Or (a, b) -> eval_pred elem a || eval_pred elem b
  | Not a -> not (eval_pred elem a)

let eval_head elem = function
  | Hscalar s -> eval_scalar elem s
  | Hstruct fields ->
      V.strct (List.map (fun (n, s) -> (n, eval_scalar elem s)) fields)

let merge_structs a b =
  match (a, b) with
  | V.Struct fa, V.Struct fb -> V.strct (fa @ fb)
  | _ ->
      algebra_error "join elements must be structs, got %s and %s"
        (V.type_name a) (V.type_name b)

let rec eval ~resolve e =
  match e with
  | Get name -> (
      match resolve name with
      | Some v -> v
      | None -> algebra_error "unresolved collection %s" name)
  | Data v -> v
  | Select (e, p) ->
      V.filter_elements (fun elem -> eval_pred elem p) (eval ~resolve e)
  | Project (e, attrs) ->
      let project elem =
        V.strct (List.map (fun a -> (a, get_path elem [ a ])) attrs)
      in
      V.map_elements project (eval ~resolve e)
  | Map (e, h) -> V.map_elements (fun elem -> eval_head elem h) (eval ~resolve e)
  | Join (l, r, pairs) ->
      let lv = eval ~resolve l and rv = eval ~resolve r in
      let matches le re =
        List.for_all
          (fun (pa, pb) ->
            (* join keys compare exactly like [Select]'s [=], so moving a
               conjunct into the pair list preserves semantics *)
            eval_pred (merge_structs le re) (Cmp (Eq, Attr pa, Attr pb)))
          pairs
      in
      let rows =
        List.concat_map
          (fun le ->
            List.filter_map
              (fun re -> if matches le re then Some (merge_structs le re) else None)
              (V.elements rv))
          (V.elements lv)
      in
      V.bag rows
  | Union es ->
      List.fold_left
        (fun acc e -> V.bag_union acc (eval ~resolve e))
        (V.bag []) es
  | Distinct e -> V.distinct (eval ~resolve e)
  | Submit (_, e) -> eval ~resolve e
