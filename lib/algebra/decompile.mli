(** Logical algebra → OQL (paper Section 4: "the physical expression is
    transformed back into a high level query. This transformation is
    possible because ... each logical operation has a corresponding OQL
    expression").

    Decompilation is what lets a partially evaluated plan be returned as a
    query: completed subtrees appear as data ([Data] → collection
    literals), blocked ones as the OQL they stand for ([Submit] is
    location-transparent in the query text).

    The decompiler recognizes the compiler's select shape
    [Map(Select(JoinTree(bind...)), head)] and reconstructs a single
    select-from-where (so paper examples come back in their original
    form); other trees decompile compositionally with fresh variables. *)

module Ast := Disco_oql.Ast

exception Not_decompilable of string
(** Raised for trees violating the binding-struct discipline (cannot occur
    on compiler output). *)

val decompile : Expr.expr -> Ast.query

val decompile_string : Expr.expr -> string
(** [decompile_string e] is the OQL text of [decompile e]. *)
