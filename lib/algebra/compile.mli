(** OQL → logical algebra translation (paper Section 3.2: "when the query
    optimizer transforms an OQL query into a logical expression,
    references to extents are transformed into the submit operator").

    The compiler handles the algebraic core of OQL: select-from-where
    with independent from-bindings, struct/scalar projections with
    arithmetic, boolean where-clauses, [union] / [distinct], constants.
    Anything outside that core — correlated subqueries, aggregates,
    [flatten], dependent joins — is rejected with [Error reason] and is
    executed by the mediator's hybrid evaluator instead; this mirrors the
    paper's restriction that wrappers see only the algebraic machine.

    Before compiling, the mediator must already have expanded views,
    implicit type extents and [person*] (so every free name is a concrete
    data-source extent). *)

module Ast := Disco_oql.Ast

val compile : Ast.query -> (Expr.expr, string) result
(** Translation without source placement: extents appear as [Get]. *)

val locate : repo_of:(string -> string option) -> Expr.expr -> Expr.expr
(** Wrap every [Get g] whose extent has a repository in
    [Submit (repo, Get g)] — the paper's submit introduction. [Get]s
    without a repository (already-materialized names) are left alone. *)

val compile_pred : Ast.query -> (Expr.pred, string) result
(** Compile a boolean OQL expression over binding variables into an
    algebra predicate ([x.salary > 10] becomes
    [Cmp (Gt, Attr ["x"; "salary"], Const 10)]). *)

val compile_scalar : Ast.query -> (Expr.scalar, string) result
