module V = Disco_value.Value
module Ast = Disco_oql.Ast

exception Not_decompilable of string

let fail fmt = Format.kasprintf (fun s -> raise (Not_decompilable s)) fmt

let arith_of = function
  | Expr.Add -> Ast.Add
  | Expr.Sub -> Ast.Sub
  | Expr.Mul -> Ast.Mul
  | Expr.Div -> Ast.Div
  | Expr.Mod -> Ast.Mod

let cmp_of = function
  | Expr.Eq -> Ast.Eq
  | Expr.Ne -> Ast.Ne
  | Expr.Lt -> Ast.Lt
  | Expr.Le -> Ast.Le
  | Expr.Gt -> Ast.Gt
  | Expr.Ge -> Ast.Ge
  | Expr.Like -> Ast.Like

(* Render a path against a base expression: base=None means paths are
   variable references ([x; salary] -> x.salary); base=Some b roots the
   path at b ([] -> b, [f] -> b.f). *)
let path_to_ast ?base path =
  match (base, path) with
  | None, [] -> fail "element reference outside a variable scope"
  | None, head :: rest ->
      List.fold_left (fun acc f -> Ast.Path (acc, f)) (Ast.Ident head) rest
  | Some b, path -> List.fold_left (fun acc f -> Ast.Path (acc, f)) b path

let rec scalar_to_ast ?base = function
  | Expr.Attr path -> path_to_ast ?base path
  | Expr.Const v -> Ast.Const v
  | Expr.Arith (op, a, b) ->
      Ast.Binop (arith_of op, scalar_to_ast ?base a, scalar_to_ast ?base b)

let rec pred_to_ast ?base = function
  | Expr.True -> Ast.Const (V.Bool true)
  | Expr.Cmp (op, a, b) ->
      Ast.Binop (cmp_of op, scalar_to_ast ?base a, scalar_to_ast ?base b)
  | Expr.Member (a, keys) ->
      (* membership decompiles to an existential over the key constants *)
      Ast.Quant
        ( Ast.Exists,
          "k",
          Ast.Const keys,
          Ast.Binop (Ast.Eq, scalar_to_ast ?base a, Ast.Ident "k") )
  | Expr.And (a, b) -> Ast.Binop (Ast.And, pred_to_ast ?base a, pred_to_ast ?base b)
  | Expr.Or (a, b) -> Ast.Binop (Ast.Or, pred_to_ast ?base a, pred_to_ast ?base b)
  | Expr.Not a -> Ast.Unop (Ast.Not, pred_to_ast ?base a)

let head_to_ast ?base = function
  | Expr.Hscalar s -> scalar_to_ast ?base s
  | Expr.Hstruct fields ->
      Ast.Struct_expr (List.map (fun (n, s) -> (n, scalar_to_ast ?base s)) fields)

(* Fresh variable names for compositional decompilation; the counter is
   local to each decompile call so output is deterministic. *)
let make_fresh () =
  let counter = ref 0 in
  let names = [| "x"; "y"; "z"; "u"; "w" |] in
  fun () ->
    incr counter;
    if !counter <= Array.length names then names.(!counter - 1)
    else Printf.sprintf "v%d" !counter

(* -- the compiler's select shape -- *)

(* A join tree of binds: Map(C, Hstruct [(x, Attr [])]) leaves combined
   with Join. Returns the from-bindings and the equi-join conjuncts. *)
let rec match_join_tree fresh e =
  match e with
  | Expr.Submit (_, inner) -> match_join_tree fresh inner
  | Expr.Map (inner, Expr.Hstruct [ (var, Expr.Attr []) ]) ->
      Some ([ (var, inner) ], [])
  | Expr.Data coll
    when V.is_collection coll
         && V.cardinal coll > 0
         && List.for_all
              (function V.Struct [ (_, _) ] -> true | _ -> false)
              (V.elements coll)
         && List.length
              (List.sort_uniq String.compare
                 (List.filter_map
                    (function V.Struct [ (n, _) ] -> Some n | _ -> None)
                    (V.elements coll)))
            = 1 ->
      (* a materialized binding: Data [{x: v}; ...] reads back as
         [x in Bag(v, ...)], keeping partially evaluated joins in the
         paper's flat select form *)
      let var =
        match V.elements coll with
        | V.Struct [ (n, _) ] :: _ -> n
        | _ -> assert false
      in
      let inner =
        V.bag
          (List.filter_map
             (function V.Struct [ (_, v) ] -> Some v | _ -> None)
             (V.elements coll))
      in
      Some ([ (var, Expr.Data inner) ], [])
  | Expr.Join (l, r, pairs) -> (
      match (match_join_tree fresh l, match_join_tree fresh r) with
      | Some (lb, lc), Some (rb, rc) ->
          let pair_conjuncts =
            List.map (fun (pa, pb) -> Expr.Cmp (Expr.Eq, Expr.Attr pa, Expr.Attr pb)) pairs
          in
          Some (lb @ rb, lc @ rc @ pair_conjuncts)
      | _ -> None)
  | _ -> None

let conj preds =
  match preds with
  | [] -> None
  | first :: rest ->
      Some (List.fold_left (fun acc p -> Expr.And (acc, p)) first rest)

let rec decompile_expr fresh e =
  match try_select_shape fresh e with
  | Some q -> q
  | None -> decompile_node fresh e

(* Map(Select(JoinTree, p), head) / Map(JoinTree, head) / bare shapes with
   Distinct on top -> one select-from-where. *)
and try_select_shape fresh e =
  let distinct, e =
    match e with Expr.Distinct inner -> (true, inner) | _ -> (false, e)
  in
  let head, e =
    match e with Expr.Map (inner, h) -> (Some h, inner) | _ -> (None, e)
  in
  match head with
  | None -> None
  | Some head -> (
      let where, e =
        match e with Expr.Select (inner, p) -> (Some p, inner) | _ -> (None, e)
      in
      match
        match
          match_join_tree fresh e
        with
        | Some _ as found -> found
        | None -> (
            (* bind-less single source: the paper's common case once
               push_heads has fused the binding away. Paths are raw
               fields, addressed through one fresh variable. *)
            match e with
            | Expr.Get _ | Expr.Data _ | Expr.Submit _ | Expr.Union _
            | Expr.Distinct _ ->
                Some ([ (fresh (), e) ], [])
            | Expr.Map _ | Expr.Join _ | Expr.Select _ | Expr.Project _ ->
                None)
      with
      | None -> None
      | Some ([ (var, _) ] as bindings, join_conjuncts)
        when (match e with Expr.Map _ | Expr.Join _ -> false | _ -> true) -> (
          (* single raw-element binding: root paths at the variable *)
          let from =
            List.map
              (fun (v, coll) -> (v, decompile_expr fresh coll))
              bindings
          in
          let all_preds =
            join_conjuncts @ (match where with Some p -> [ p ] | None -> [])
          in
          let base = Ast.Ident var in
          try
            let where_ast =
              Option.map (fun p -> pred_to_ast ~base p) (conj all_preds)
            in
            Some
              (Ast.Select
                 {
                   Ast.sel_distinct = distinct;
                   sel_proj = head_to_ast ~base head;
                   sel_from = from;
                   sel_where = where_ast;
                 sel_order = [];
                 })
          with Not_decompilable _ -> None)
      | Some (bindings, join_conjuncts) -> (
          let from =
            List.map (fun (var, coll) -> (var, decompile_expr fresh coll)) bindings
          in
          let all_preds =
            join_conjuncts @ (match where with Some p -> [ p ] | None -> [])
          in
          try
            let where_ast =
              Option.map (fun p -> pred_to_ast p) (conj all_preds)
            in
            Some
              (Ast.Select
                 {
                   Ast.sel_distinct = distinct;
                   sel_proj = head_to_ast head;
                   sel_from = from;
                   sel_where = where_ast;
                 sel_order = [];
                 })
          with Not_decompilable _ -> None))

and decompile_node fresh e =
  match e with
  | Expr.Get name -> Ast.Ident name
  | Expr.Data v -> Ast.Const v
  | Expr.Submit (_, inner) -> decompile_expr fresh inner
  | Expr.Union es -> Ast.Call ("union", List.map (decompile_expr fresh) es)
  | Expr.Distinct inner -> Ast.Call ("distinct", [ decompile_expr fresh inner ])
  | Expr.Select (inner, p) ->
      let t = fresh () in
      Ast.Select
        {
          Ast.sel_distinct = false;
          sel_proj = Ast.Ident t;
          sel_from = [ (t, decompile_expr fresh inner) ];
          sel_where = Some (pred_to_ast ~base:(Ast.Ident t) p);
        sel_order = [];
        }
  | Expr.Project (inner, attrs) ->
      let t = fresh () in
      Ast.Select
        {
          Ast.sel_distinct = false;
          sel_proj =
            Ast.Struct_expr
              (List.map (fun a -> (a, Ast.Path (Ast.Ident t, a))) attrs);
          sel_from = [ (t, decompile_expr fresh inner) ];
          sel_where = None;
        sel_order = [];
        }
  | Expr.Map (inner, h) ->
      let t = fresh () in
      Ast.Select
        {
          Ast.sel_distinct = false;
          sel_proj = head_to_ast ~base:(Ast.Ident t) h;
          sel_from = [ (t, decompile_expr fresh inner) ];
          sel_where = None;
        sel_order = [];
        }
  | Expr.Join (l, r, pairs) -> (
      match (Expr.binding_vars l, Expr.binding_vars r) with
      | Some lvars, Some rvars ->
          let a = fresh () and b = fresh () in
          let merge =
            List.map (fun v -> (v, Ast.Path (Ast.Ident a, v))) lvars
            @ List.map (fun w -> (w, Ast.Path (Ast.Ident b, w))) rvars
          in
          let conjuncts =
            List.map
              (fun (pa, pb) ->
                Ast.Binop
                  ( Ast.Eq,
                    path_to_ast ~base:(Ast.Ident a) pa,
                    path_to_ast ~base:(Ast.Ident b) pb ))
              pairs
          in
          let where =
            match conjuncts with
            | [] -> None
            | first :: rest ->
                Some
                  (List.fold_left
                     (fun acc c -> Ast.Binop (Ast.And, acc, c))
                     first rest)
          in
          Ast.Select
            {
              Ast.sel_distinct = false;
              sel_proj = Ast.Struct_expr merge;
              sel_from =
                [ (a, decompile_expr fresh l); (b, decompile_expr fresh r) ];
              sel_where = where;
            sel_order = [];
            }
      | _ -> fail "join over elements without binding variables")

let decompile e = decompile_expr (make_fresh ()) e
let decompile_string e = Ast.to_string (decompile e)
