(** The logical algebra of the Disco mediator (paper Section 3).

    Queries compile to trees of logical operators; the distinguished
    {!constructor:Submit} operator marks a subtree whose "meaning is
    located at" a data source (Section 3.2) and is the unit handed to
    wrappers. Transformation rules (module {!Rules}) rewrite trees, e.g.
    pushing {!constructor:Select} / {!constructor:Project} /
    {!constructor:Join} inside a [Submit] when the wrapper's capabilities
    permit.

    {b The binding-struct discipline.} The compiler wraps each
    from-binding [x in C] as [Map(C, Hstruct [(x, whole-element)])], so
    elements flowing through multi-variable operators are structs keyed by
    variable names; scalar {!Attr} paths like [["x"; "salary"]] address
    into them. [Join] merges two binding structs (their field sets are
    disjoint by construction). This makes every logical tree decompilable
    back to OQL — the property Section 4 needs to return partial answers
    as queries. *)

module V := Disco_value.Value

type arith = Add | Sub | Mul | Div | Mod
type cmp = Eq | Ne | Lt | Le | Gt | Ge | Like

(** Scalar expressions over the current element. [Attr []] is the element
    itself; [Attr ["x"; "salary"]] is field [salary] of field [x]. *)
type scalar =
  | Attr of string list
  | Const of V.t
  | Arith of arith * scalar * scalar

type pred =
  | True
  | Cmp of cmp * scalar * scalar
  | Member of scalar * V.t
      (** membership in a constant collection — the filter a
          semijoin-reducing mediator pushes to the second source (an
          extension: the paper notes [submit]'s call semantics cannot
          express semijoins and defers them to future work, Section 3.2 /
          6.2; here the data flows through the {e mediator}, never
          source-to-source) *)
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

(** Projection heads. *)
type head =
  | Hstruct of (string * scalar) list  (** build a struct *)
  | Hscalar of scalar  (** produce a bare value *)

type expr =
  | Get of string  (** a named source collection, mediator namespace *)
  | Data of V.t  (** materialized data (a constant collection) *)
  | Select of expr * pred
  | Project of expr * string list
      (** keep the listed attributes (struct output) *)
  | Map of expr * head  (** generalized projection *)
  | Join of expr * expr * (string list * string list) list
      (** equi-join: pairs of (left path, right path); output merges the
          two element structs (field sets must be disjoint) *)
  | Union of expr list
  | Distinct of expr
  | Submit of string * expr
      (** [Submit (repository, e)]: evaluate [e] at the named repository.
          [e] is in the mediator's name space; the physical [exec]
          translates names through the extent's {!Disco_odl.Typemap}. *)

(** Operator names, used by wrapper capability grammars. *)
type op_name = Oget | Oselect | Oproject | Omap | Ojoin | Ounion | Odistinct

val op_name_string : op_name -> string
val top_op : expr -> op_name option
(** [None] for [Data] and [Submit]. *)

val pp_scalar : Format.formatter -> scalar -> unit
val pp_pred : Format.formatter -> pred -> unit
val pp : Format.formatter -> expr -> unit
(** Prints the paper's prefix notation, e.g.
    [project(name, submit(r0, get(person0)))]. *)

val to_string : expr -> string
val equal : expr -> expr -> bool
val size : expr -> int
(** Node count, including scalar/pred nodes. *)

(** {1 Structure} *)

val binding_vars : expr -> string list option
(** The binding-struct field names of the elements an expression produces,
    when statically known (see the discipline above). *)

val submits : expr -> (string * expr) list
(** All [Submit] nodes, preorder. *)

val gets : expr -> string list
(** All [Get] collection names, preorder, duplicates preserved. *)

val map_submits : (string -> expr -> expr) -> expr -> expr
(** Rewrite every [Submit] node (does not recurse into replacements). *)

val scalar_paths : scalar -> string list list
val pred_paths : pred -> string list list

val prefix_heads : pred -> string list option
(** The set of distinct path heads a predicate mentions, or [None] if it
    mentions the whole element ([Attr []]). *)

(** {1 Scalar / predicate evaluation} *)

exception Algebra_error of string

val eval_scalar : V.t -> scalar -> V.t
(** Evaluate against a current element. Raises {!Algebra_error} on type
    errors. *)

val eval_pred : V.t -> pred -> bool

(** {1 Reference evaluation}

    Local evaluation of a whole tree, used as the semantics oracle in
    tests and by the mediator for subtrees left on the mediator side.
    [Submit] is location-transparent here: its body is evaluated with the
    same resolver. *)

val eval : resolve:(string -> V.t option) -> expr -> V.t
