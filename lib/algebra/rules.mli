(** Transformation rules over the logical algebra (paper Section 3.1-3.2).

    The rules are semantics-preserving rewrites, checked against the
    reference evaluator by property tests. The capability-sensitive rules
    consult the wrapper interface through a [can_push] callback before
    moving an operator inside a [Submit] — "when applying a transformation
    rule to the submit operator, the transformation rule consults the
    wrapper interface" (Section 3.2).

    The paper's restriction that [submit] has call semantics — no data
    flows between sources, so semijoins are inexpressible — is enforced
    structurally: no rule ever nests one source's [Submit] inside
    another's. *)

type can_push = repo:string -> Expr.expr -> bool
(** [can_push ~repo e] answers whether the wrapper serving [repo] accepts
    the logical expression [e] as a [Submit] argument. *)

val push_all : can_push
(** Accepts everything (useful for tests). *)

val push_none : can_push
(** Accepts nothing: every operator stays on the mediator. *)

val extract_join_pairs : Expr.expr -> Expr.expr
(** Move equi-join conjuncts of a [Select] above a [Join] into the join's
    pair list ([Select(Join(l,r,[]), x.id = y.id)] becomes
    [Join(l, r, [x.id = y.id])]). *)

val push_selects : Expr.expr -> Expr.expr
(** Push [Select] through [Union], [Map] (rewriting paths through the
    projection) and into the relevant side of a [Join]. *)

val push_heads : Expr.expr -> Expr.expr
(** Fuse stacked [Map]s and distribute [Map]/[Project] over [Union]. *)

val absorb : can_push:can_push -> Expr.expr -> Expr.expr
(** Move operators inside [Submit] where the wrapper allows: select,
    project, map and distinct absorb from above; two [Submit]s on the same
    repository under a [Join] merge (the paper's join pushdown,
    Section 3.2). *)

val simplify : Expr.expr -> Expr.expr
(** Cleanups: drop [Select true], collapse nested selects and singleton
    unions, remove identity maps. *)

val normalize :
  ?can_push:can_push -> ?on_rule:(string -> unit) -> Expr.expr -> Expr.expr
(** The standard pipeline:
    [simplify ∘ absorb ∘ push_heads ∘ push_selects ∘ extract_join_pairs]
    iterated to a fixpoint. Without [can_push], nothing is absorbed into
    submits (maximally conservative).

    [on_rule] is called with the stage name ([extract_join_pairs],
    [push_selects], [push_heads], [absorb] or [simplify]) each time that
    stage rewrites the expression — i.e. its output differs from its
    input.  Observability hooks (optimizer rule-fired metrics) use it;
    it has no effect on the result. *)
