module V = Disco_value.Value
module Ast = Disco_oql.Ast

exception Reject of string

let reject fmt = Format.kasprintf (fun s -> raise (Reject s)) fmt

let arith_of = function
  | Ast.Add -> Expr.Add
  | Ast.Sub -> Expr.Sub
  | Ast.Mul -> Expr.Mul
  | Ast.Div -> Expr.Div
  | Ast.Mod -> Expr.Mod
  | _ -> assert false

let cmp_of = function
  | Ast.Eq -> Expr.Eq
  | Ast.Ne -> Expr.Ne
  | Ast.Lt -> Expr.Lt
  | Ast.Le -> Expr.Le
  | Ast.Gt -> Expr.Gt
  | Ast.Ge -> Expr.Ge
  | Ast.Like -> Expr.Like
  | _ -> assert false

(* Scalars address binding variables: [x] becomes [Attr ["x"]],
   [x.salary] becomes [Attr ["x"; "salary"]]. *)
let rec scalar = function
  | Ast.Const v -> Expr.Const v
  | Ast.Ident name -> Expr.Attr [ name ]
  | Ast.Path (base, field) -> (
      match scalar base with
      | Expr.Attr path -> Expr.Attr (path @ [ field ])
      | _ -> reject "path through a computed value")
  | Ast.Binop (((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod) as op), a, b)
    ->
      Expr.Arith (arith_of op, scalar a, scalar b)
  | Ast.Unop (Ast.Neg, a) ->
      Expr.Arith (Expr.Sub, Expr.Const (V.Int 0), scalar a)
  | q -> reject "scalar subexpression not algebraic: %s" (Ast.to_string q)

let rec pred = function
  | Ast.Const (V.Bool true) -> Expr.True
  | Ast.Binop (Ast.And, a, b) -> Expr.And (pred a, pred b)
  | Ast.Binop (Ast.Or, a, b) -> Expr.Or (pred a, pred b)
  | Ast.Unop (Ast.Not, a) -> Expr.Not (pred a)
  | Ast.Binop
      (((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Like) as op), a, b)
    ->
      Expr.Cmp (cmp_of op, scalar a, scalar b)
  | q -> reject "where-clause not algebraic: %s" (Ast.to_string q)

let head = function
  | Ast.Struct_expr fields ->
      Expr.Hstruct (List.map (fun (n, e) -> (n, scalar e)) fields)
  | q -> Expr.Hscalar (scalar q)

(* A constant collection expression evaluates with an empty environment;
   anything that needs names is not constant. *)
let try_constant q =
  match Disco_oql.Eval.eval (Disco_oql.Eval.env ()) q with
  | v -> Some v
  | exception Disco_oql.Eval.Eval_error _ -> None

let bind var e = Expr.Map (e, Expr.Hstruct [ (var, Expr.Attr []) ])

let rec collection q =
  match q with
  | Ast.Ident name -> Expr.Get name
  | Ast.Const ((V.Bag _ | V.Set _ | V.List _) as v) -> Expr.Data v
  | Ast.Coll_expr (_, _) -> (
      match try_constant q with
      | Some v -> Expr.Data v
      | None -> reject "non-constant collection literal")
  | Ast.Call ("union", args) -> Expr.Union (List.map collection args)
  | Ast.Call ("distinct", [ e ]) -> Expr.Distinct (collection e)
  | Ast.Select sel -> select sel
  | Ast.Extent_star name -> reject "unexpanded subtype extent %s*" name
  | q -> reject "collection not algebraic: %s" (Ast.to_string q)

and select sel =
  if sel.Ast.sel_order <> [] then
    reject "order by is evaluated by the mediator";
  (* from-bindings must be independent (no dependent joins in the
     algebra). *)
  let vars = List.map fst sel.Ast.sel_from in
  List.iter
    (fun (_, coll_q) ->
      let free = Ast.free_collections coll_q in
      match List.find_opt (fun f -> List.mem f vars) free with
      | Some v -> reject "dependent from-binding on %s" v
      | None -> ())
    sel.Ast.sel_from;
  let sides =
    List.map (fun (var, coll_q) -> bind var (collection coll_q)) sel.Ast.sel_from
  in
  let joined =
    match sides with
    | [] -> reject "empty from clause"
    | first :: rest ->
        List.fold_left (fun acc side -> Expr.Join (acc, side, [])) first rest
  in
  let filtered =
    match sel.Ast.sel_where with
    | None -> joined
    | Some w -> Expr.Select (joined, pred w)
  in
  let projected = Expr.Map (filtered, head sel.Ast.sel_proj) in
  if sel.Ast.sel_distinct then Expr.Distinct projected else projected

let compile q = try Ok (collection q) with Reject reason -> Error reason
let compile_pred q = try Ok (pred q) with Reject reason -> Error reason
let compile_scalar q = try Ok (scalar q) with Reject reason -> Error reason

let locate ~repo_of e =
  let rec go e =
    match e with
    | Expr.Get name -> (
        match repo_of name with
        | Some repo -> Expr.Submit (repo, Expr.Get name)
        | None -> e)
    | Expr.Data _ -> e
    | Expr.Select (e, p) -> Expr.Select (go e, p)
    | Expr.Project (e, attrs) -> Expr.Project (go e, attrs)
    | Expr.Map (e, h) -> Expr.Map (go e, h)
    | Expr.Join (l, r, pairs) -> Expr.Join (go l, go r, pairs)
    | Expr.Union es -> Expr.Union (List.map go es)
    | Expr.Distinct e -> Expr.Distinct (go e)
    | Expr.Submit (repo, e) -> Expr.Submit (repo, e)
  in
  go e
