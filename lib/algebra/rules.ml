open Expr

type can_push = repo:string -> Expr.expr -> bool

let push_all ~repo:_ _ = true
let push_none ~repo:_ _ = false

(* -- generic bottom-up rewriting -- *)

let rec bottom_up f e =
  let e' =
    match e with
    | Get _ | Data _ -> e
    | Select (inner, p) -> Select (bottom_up f inner, p)
    | Project (inner, attrs) -> Project (bottom_up f inner, attrs)
    | Map (inner, h) -> Map (bottom_up f inner, h)
    | Join (l, r, pairs) -> Join (bottom_up f l, bottom_up f r, pairs)
    | Union es -> Union (List.map (bottom_up f) es)
    | Distinct inner -> Distinct (bottom_up f inner)
    | Submit (repo, inner) -> Submit (repo, bottom_up f inner)
  in
  f e'

let rec fixpoint ?(fuel = 32) step e =
  if fuel = 0 then e
  else
    let e' = step e in
    if equal e e' then e else fixpoint ~fuel:(fuel - 1) step e'

(* -- conjunct handling -- *)

let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | True -> []
  | p -> [ p ]

let conj = function
  | [] -> True
  | first :: rest -> List.fold_left (fun acc p -> And (acc, p)) first rest

(* -- substitution of paths through a projection head -- *)

let subst_path_via_head h path =
  match (h, path) with
  | Hscalar s, [] -> Some s
  | Hscalar (Attr base), rest -> Some (Attr (base @ rest))
  | Hscalar _, _ :: _ -> None
  | Hstruct _, [] -> None
  | Hstruct fields, x :: rest -> (
      match List.assoc_opt x fields with
      | Some (Attr base) -> Some (Attr (base @ rest))
      | Some s when rest = [] -> Some s
      | Some _ | None -> None)

let rec subst_scalar h = function
  | Attr path -> subst_path_via_head h path
  | Const v -> Some (Const v)
  | Arith (op, a, b) -> (
      match (subst_scalar h a, subst_scalar h b) with
      | Some a', Some b' -> Some (Arith (op, a', b'))
      | _ -> None)

let rec subst_pred h = function
  | True -> Some True
  | Cmp (op, a, b) -> (
      match (subst_scalar h a, subst_scalar h b) with
      | Some a', Some b' -> Some (Cmp (op, a', b'))
      | _ -> None)
  | Member (a, keys) ->
      Option.map (fun a' -> Member (a', keys)) (subst_scalar h a)
  | And (a, b) -> (
      match (subst_pred h a, subst_pred h b) with
      | Some a', Some b' -> Some (And (a', b'))
      | _ -> None)
  | Or (a, b) -> (
      match (subst_pred h a, subst_pred h b) with
      | Some a', Some b' -> Some (Or (a', b'))
      | _ -> None)
  | Not a -> Option.map (fun a' -> Not a') (subst_pred h a)

let subst_head outer inner =
  match outer with
  | Hscalar s -> Option.map (fun s' -> Hscalar s') (subst_scalar inner s)
  | Hstruct fields ->
      let substituted =
        List.map (fun (n, s) -> (n, subst_scalar inner s)) fields
      in
      if List.for_all (fun (_, o) -> o <> None) substituted then
        Some (Hstruct (List.map (fun (n, o) -> (n, Option.get o)) substituted))
      else None

(* -- rule passes -- *)

let extract_join_pairs e =
  let step = function
    | Select (Join (l, r, pairs), p) -> (
        match (binding_vars l, binding_vars r) with
        | Some lvars, Some rvars ->
            let is_var side = function
              | head :: _ -> List.mem head side
              | [] -> false
            in
            let extracted, kept =
              List.partition_map
                (fun c ->
                  match c with
                  | Cmp (Eq, Attr pa, Attr pb)
                    when is_var lvars pa && is_var rvars pb ->
                      Left (pa, pb)
                  | Cmp (Eq, Attr pa, Attr pb)
                    when is_var rvars pa && is_var lvars pb ->
                      Left (pb, pa)
                  | c -> Right c)
                (conjuncts p)
            in
            if extracted = [] then Select (Join (l, r, pairs), p)
            else
              let joined = Join (l, r, pairs @ extracted) in
              if kept = [] then joined else Select (joined, conj kept)
        | _ -> Select (Join (l, r, pairs), p))
    | e -> e
  in
  bottom_up step e

let push_selects e =
  let step = function
    | Select (Union es, p) -> Union (List.map (fun e -> Select (e, p)) es)
    | Select (Select (inner, p1), p2) -> Select (inner, And (p1, p2))
    | Select (Distinct inner, p) -> Distinct (Select (inner, p))
    | Select (Map (inner, h), p) as orig -> (
        match subst_pred h p with
        | Some p' -> Map (Select (inner, p'), h)
        | None -> orig)
    | Select (Join (l, r, pairs), p) -> (
        match (binding_vars l, binding_vars r) with
        | Some lvars, Some rvars ->
            let covered side c =
              match prefix_heads c with
              | Some heads -> List.for_all (fun h -> List.mem h side) heads
              | None -> false
            in
            let to_l, rest =
              List.partition (covered lvars) (conjuncts p)
            in
            let to_r, keep = List.partition (covered rvars) rest in
            let l = if to_l = [] then l else Select (l, conj to_l) in
            let r = if to_r = [] then r else Select (r, conj to_r) in
            let joined = Join (l, r, pairs) in
            if keep = [] then joined else Select (joined, conj keep)
        | _ -> Select (Join (l, r, pairs), p))
    | e -> e
  in
  bottom_up step e

let push_heads e =
  let step = function
    | Map (Map (inner, h1), h2) as orig -> (
        match subst_head h2 h1 with
        | Some fused -> Map (inner, fused)
        | None -> orig)
    | Map (Union es, h) -> Union (List.map (fun e -> Map (e, h)) es)
    | Project (Union es, attrs) ->
        Union (List.map (fun e -> Project (e, attrs)) es)
    | Distinct (Distinct inner) -> Distinct inner
    | e -> e
  in
  bottom_up step e

let absorb ~can_push e =
  let try_push repo body orig =
    if can_push ~repo body then Submit (repo, body) else orig
  in
  (* A head that only extracts attributes can be split: push a Project
     (the paper's project(name, get(r))) and keep the value-shaping Map
     on the mediator — the move that serves project-only wrappers. *)
  let head_attrs h =
    let attr_of = function Attr [ a ] -> Some a | _ -> None in
    match h with
    | Hscalar s -> Option.map (fun a -> [ a ]) (attr_of s)
    | Hstruct fields ->
        let attrs = List.map (fun (_, s) -> attr_of s) fields in
        if List.for_all (fun o -> o <> None) attrs then
          Some (List.sort_uniq String.compare (List.filter_map Fun.id attrs))
        else None
  in
  let step = function
    | Select (Submit (repo, inner), p) as orig ->
        try_push repo (Select (inner, p)) orig
    | Project (Submit (repo, inner), attrs) as orig ->
        try_push repo (Project (inner, attrs)) orig
    | Map (Submit (repo, inner), h) as orig -> (
        if can_push ~repo (Map (inner, h)) then Submit (repo, Map (inner, h))
        else
          match head_attrs h with
          | Some attrs
            when (match inner with Project _ -> false | _ -> true)
                 && can_push ~repo (Project (inner, attrs)) ->
              Map (Submit (repo, Project (inner, attrs)), h)
          | _ -> orig)
    | Distinct (Submit (repo, inner)) as orig ->
        try_push repo (Distinct inner) orig
    | Join (Submit (r1, a), Submit (r2, b), pairs) as orig
      when String.equal r1 r2 ->
        try_push r1 (Join (a, b, pairs)) orig
    | e -> e
  in
  bottom_up step e

let simplify e =
  let step = function
    | Select (e, True) -> e
    | Select (Data (Disco_value.Value.Bag []), _) -> Data (Disco_value.Value.Bag [])
    | Union [ e ] -> e
    | Union es
      when List.exists (function Union _ -> true | _ -> false) es ->
        Union
          (List.concat_map
             (function Union inner -> inner | e -> [ e ])
             es)
    | Map (e, Hscalar (Attr [])) -> e
    | e -> e
  in
  bottom_up step e

let normalize ?(can_push = push_none) ?on_rule e =
  let stage name f e =
    let e' = f e in
    (match on_rule with
    | Some fire when not (equal e e') -> fire name
    | _ -> ());
    e'
  in
  let pipeline e =
    e
    |> stage "extract_join_pairs" extract_join_pairs
    |> stage "push_selects" push_selects
    |> stage "push_heads" push_heads
    |> stage "absorb" (absorb ~can_push)
    |> stage "simplify" simplify
  in
  fixpoint pipeline e
