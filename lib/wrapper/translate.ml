module Expr = Disco_algebra.Expr
module Typemap = Disco_odl.Typemap
module V = Disco_value.Value

type shape = Opaque | Tuple of string | Record of (string * shape) list

(* Navigate a shape along an attribute path to find the shape of the
   addressed value. *)
let rec shape_at shape path =
  match (shape, path) with
  | s, [] -> s
  | Tuple _, _ :: _ -> Opaque  (* a field of a source tuple is a scalar *)
  | Record fields, x :: rest -> (
      match List.assoc_opt x fields with
      | Some sub -> shape_at sub rest
      | None -> Opaque)
  | Opaque, _ -> Opaque

let scalar_shape child_shape = function
  | Expr.Attr path -> shape_at child_shape path
  | Expr.Const _ | Expr.Arith _ -> Opaque

let rec shape_of = function
  | Expr.Get name -> Tuple name
  | Expr.Data _ -> Opaque
  | Expr.Select (e, _) | Expr.Distinct e | Expr.Submit (_, e) -> shape_of e
  | Expr.Project (e, _) -> shape_of e
  | Expr.Map (e, Expr.Hscalar s) -> scalar_shape (shape_of e) s
  | Expr.Map (e, Expr.Hstruct fields) ->
      let child = shape_of e in
      Record (List.map (fun (n, s) -> (n, scalar_shape child s)) fields)
  | Expr.Join (l, r, _) -> (
      match (shape_of l, shape_of r) with
      | Record a, Record b -> Record (a @ b)
      | _ -> Opaque)
  | Expr.Union [] -> Opaque
  | Expr.Union (e :: _) -> shape_of e

(* -- mediator -> source renaming -- *)

(* Rename an attribute path given the shape of the element it addresses
   into: components addressing into a [Tuple ext] go through ext's map. *)
let rec rename_path map_of shape path =
  match (shape, path) with
  | _, [] -> []
  | Tuple ext, field :: rest ->
      Typemap.source_field (map_of ext) field :: rest
      (* deeper components address inside a scalar: left untouched *)
  | Record fields, x :: rest -> (
      match List.assoc_opt x fields with
      | Some sub -> x :: rename_path map_of sub rest
      | None -> path)
  | Opaque, _ -> path

(* A mediator field with a value transform (Section 6.2's weekly/yearly
   salaries) is substituted by the matching source arithmetic, so the
   source computes mediator-unit values and predicates compare in
   mediator units without inversion. *)
let number_const x =
  if Float.is_integer x then Expr.Const (V.Int (int_of_float x))
  else Expr.Const (V.Float x)

let rec transform_of_path map_of shape path =
  match (shape, path) with
  | Tuple ext, [ field ] -> (
      match Typemap.transform_of_mediator_field (map_of ext) field with
      | Some (src, scale, offset) -> Some ([ src ], scale, offset)
      | None -> None)
  | Record fields, x :: rest -> (
      match List.assoc_opt x fields with
      | Some sub ->
          Option.map
            (fun (p, sc, off) -> (x :: p, sc, off))
            (transform_of_path map_of sub rest)
      | None -> None)
  | _ -> None

let rec rename_scalar map_of shape = function
  | Expr.Attr path -> (
      match transform_of_path map_of shape path with
      | Some (src_path, scale, offset) ->
          let scaled =
            if scale = 1.0 then Expr.Attr src_path
            else Expr.Arith (Expr.Mul, Expr.Attr src_path, number_const scale)
          in
          if offset = 0.0 then scaled
          else Expr.Arith (Expr.Add, scaled, number_const offset)
      | None -> Expr.Attr (rename_path map_of shape path))
  | Expr.Const v -> Expr.Const v
  | Expr.Arith (op, a, b) ->
      Expr.Arith (op, rename_scalar map_of shape a, rename_scalar map_of shape b)

let rec rename_pred map_of shape = function
  | Expr.True -> Expr.True
  | Expr.Cmp (op, a, b) ->
      Expr.Cmp (op, rename_scalar map_of shape a, rename_scalar map_of shape b)
  | Expr.Member (a, keys) -> Expr.Member (rename_scalar map_of shape a, keys)
  | Expr.And (a, b) -> Expr.And (rename_pred map_of shape a, rename_pred map_of shape b)
  | Expr.Or (a, b) -> Expr.Or (rename_pred map_of shape a, rename_pred map_of shape b)
  | Expr.Not a -> Expr.Not (rename_pred map_of shape a)

let rename_head map_of shape = function
  | Expr.Hscalar s -> Expr.Hscalar (rename_scalar map_of shape s)
  | Expr.Hstruct fields ->
      Expr.Hstruct
        (List.map (fun (n, s) -> (n, rename_scalar map_of shape s)) fields)

let to_source ~map_of e =
  let rec go e =
    match e with
    | Expr.Get name ->
        Expr.Get (Typemap.source_collection (map_of name) name)
    | Expr.Data v -> Expr.Data v
    | Expr.Select (inner, p) ->
        Expr.Select (go inner, rename_pred map_of (shape_of inner) p)
    | Expr.Project (inner, attrs) ->
        let attrs' =
          match shape_of inner with
          | Tuple ext ->
              List.map (fun a -> Typemap.source_field (map_of ext) a) attrs
          | Record _ | Opaque -> attrs
        in
        Expr.Project (go inner, attrs')
    | Expr.Map (inner, h) ->
        Expr.Map (go inner, rename_head map_of (shape_of inner) h)
    | Expr.Join (l, r, pairs) ->
        let ls = shape_of l and rs = shape_of r in
        let pairs' =
          List.map
            (fun (pa, pb) ->
              (rename_path map_of ls pa, rename_path map_of rs pb))
            pairs
        in
        Expr.Join (go l, go r, pairs')
    | Expr.Union es -> Expr.Union (List.map go es)
    | Expr.Distinct inner -> Expr.Distinct (go inner)
    | Expr.Submit (repo, inner) -> Expr.Submit (repo, go inner)
  in
  go e

(* -- source -> mediator answer reformatting -- *)

let rec rename_value map_of shape v =
  match (shape, v) with
  | Opaque, _ -> v
  | Tuple ext, V.Struct _ ->
      Typemap.rename_struct_to_mediator (map_of ext) v
  | Tuple _, _ -> v
  | Record fields, V.Struct vfields ->
      V.strct
        (List.map
           (fun (name, fv) ->
             match List.assoc_opt name fields with
             | Some sub -> (name, rename_value map_of sub fv)
             | None -> (name, fv))
           vfields)
  | Record _, _ -> v

let answer_renamer ~map_of e =
  let shape = shape_of e in
  fun answer ->
    if V.is_collection answer then
      V.map_elements (rename_value map_of shape) answer
    else rename_value map_of shape answer
