(* Substring-based splitting, used by the grammar notation parser (":-"
   is two characters, so String.split_on_char does not apply). *)

let split_on_substring ~sep s =
  let sep_len = String.length sep in
  if sep_len = 0 then invalid_arg "split_on_substring: empty separator";
  let rec go start acc =
    let rec find i =
      if i + sep_len > String.length s then None
      else if String.sub s i sep_len = sep then Some i
      else find (i + 1)
    in
    match find start with
    | None -> List.rev (String.sub s start (String.length s - start) :: acc)
    | Some i -> go (i + sep_len) (String.sub s start (i - start) :: acc)
  in
  go 0 []
