(** Translation of (source-name-space) logical expressions into the SQL
    dialect of relational sources — the query-language transformation a
    wrapper performs (paper Section 1.1: wrappers "map from a subset of a
    general query language ... to the particular query language of the
    data source").

    The generator covers the normal forms the rule pipeline produces
    inside a single [Submit]: an optional [Distinct], an optional
    projection ([Map]/[Project]), an optional residual [Select], over a
    join tree of binding leaves (each a [Select]-filtered [Get]). Shapes
    outside this subset raise {!Unsupported} — the wrapper then refuses
    the expression, which the mediator treats as a capability miss. *)

module Expr := Disco_algebra.Expr
module Sql := Disco_relation.Sql
module V := Disco_value.Value

exception Unsupported of string

type compiled = {
  sql : Sql.query;
  rebuild : Sql.result -> V.t;
      (** turn the flat SQL result back into the expression's value (bag
          of tuples / binding structs / computed values) *)
}

val compile :
  schema_of:(string -> string list option) ->
  Expr.expr ->
  compiled
(** [schema_of table] lists the column names of a source table (needed to
    expand whole-tuple outputs). Raises {!Unsupported} when the expression
    is outside the supported subset, and [Invalid_argument] if a table has
    no schema. *)
