module Expr = Disco_algebra.Expr
module Sql = Disco_relation.Sql
module V = Disco_value.Value

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

type compiled = { sql : Sql.query; rebuild : Sql.result -> V.t }

(* A flattened query under construction: FROM entries as (table, alias),
   WHERE conjuncts, and the output description. *)
type output =
  | Out_tuple of string  (** all columns of one alias *)
  | Out_binds of (string * string) list  (** (var, alias): binding structs *)
  | Out_head of Expr.head  (** computed projection over the binds/tuple *)
  | Out_project of string list  (** attribute subset of a single tuple *)

type build = {
  from : (string * string) list;
  where : Sql.pred list;
  output : output;
  (* how paths resolve: (var -> alias) for bound trees, or Some alias for
     a single unbound table *)
  binds : (string * string) list;
  single : string option;
}

let arith_op = function
  | Expr.Add -> Sql.Add
  | Expr.Sub -> Sql.Sub
  | Expr.Mul -> Sql.Mul
  | Expr.Div -> Sql.Div
  | Expr.Mod -> Sql.Mod

let cmp_op = function
  | Expr.Eq -> Sql.Eq
  | Expr.Ne -> Sql.Ne
  | Expr.Lt -> Sql.Lt
  | Expr.Le -> Sql.Le
  | Expr.Gt -> Sql.Gt
  | Expr.Ge -> Sql.Ge
  | Expr.Like -> Sql.Like

let atom_lit = function
  | (V.Null | V.Bool _ | V.Int _ | V.Float _ | V.String _) as v -> Sql.Lit v
  | v -> unsupported "non-atomic constant %s in source query" (V.type_name v)

(* Resolve an attribute path to a SQL column, given the bind environment. *)
let path_to_col ~binds ~single path =
  match path with
  | [ field ] -> (
      match single with
      | Some alias -> Sql.Col (Some alias, field)
      | None -> (
          match binds with
          | [ (_, alias) ] -> Sql.Col (Some alias, field)
          | _ -> unsupported "unqualified field %s in a multi-source query" field))
  | [ var; field ] -> (
      match List.assoc_opt var binds with
      | Some alias -> Sql.Col (Some alias, field)
      | None -> unsupported "unknown binding variable %s" var)
  | path ->
      unsupported "path %s too deep for a relational source"
        (String.concat "." path)

let rec scalar_to_sql env = function
  | Expr.Const v -> atom_lit v
  | Expr.Attr path ->
      let binds, single = env in
      path_to_col ~binds ~single path
  | Expr.Arith (op, a, b) ->
      Sql.Arith (arith_op op, scalar_to_sql env a, scalar_to_sql env b)

let rec pred_to_sql env = function
  | Expr.True -> Sql.True
  | Expr.Cmp (op, a, b) -> Sql.Cmp (cmp_op op, scalar_to_sql env a, scalar_to_sql env b)
  | Expr.Member (a, keys) -> (
      (* membership becomes an OR-chain of equalities; sources with real
         IN-lists would translate directly *)
      let col = scalar_to_sql env a in
      let key_list = V.elements keys in
      if List.length key_list > 10_000 then
        unsupported "membership list too large for the source"
      else
        match key_list with
        | [] -> Sql.Cmp (Sql.Eq, Sql.Lit (V.Int 0), Sql.Lit (V.Int 1))
        | first :: rest ->
            List.fold_left
              (fun acc k -> Sql.Or (acc, Sql.Cmp (Sql.Eq, col, atom_lit k)))
              (Sql.Cmp (Sql.Eq, col, atom_lit first))
              rest)
  | Expr.And (a, b) -> Sql.And (pred_to_sql env a, pred_to_sql env b)
  | Expr.Or (a, b) -> Sql.Or (pred_to_sql env a, pred_to_sql env b)
  | Expr.Not a -> Sql.Not (pred_to_sql env a)

(* A leaf: Get t possibly under stacked Selects. Returns table name and
   the leaf-local predicates (paths are single-field). *)
let rec match_leaf = function
  | Expr.Get table -> (table, [])
  | Expr.Select (inner, p) ->
      let table, preds = match_leaf inner in
      (table, p :: preds)
  | e -> unsupported "expression too complex for SQL: %s" (Expr.to_string e)

(* A join tree of binding leaves. Accumulates FROM entries (aliased by the
   binding variable), WHERE conjuncts, and the bind environment. *)
let rec match_join_tree e =
  match e with
  | Expr.Map (inner, Expr.Hstruct [ (var, Expr.Attr []) ]) ->
      let table, preds = match_leaf inner in
      let env = ([ (var, var) ], None) in
      (* leaf predicates use bare field paths: qualify with this alias *)
      let where =
        List.map (fun p -> pred_to_sql ([ (var, var) ], Some var) p) preds
      in
      ignore env;
      ([ (table, var) ], where, [ (var, var) ])
  | Expr.Join (l, r, pairs) ->
      let lf, lw, lb = match_join_tree l in
      let rf, rw, rb = match_join_tree r in
      let binds = lb @ rb in
      let env = (binds, None) in
      let pair_preds =
        List.map
          (fun (pa, pb) ->
            Sql.Cmp
              ( Sql.Eq,
                (let b, s = env in
                 path_to_col ~binds:b ~single:s pa),
                (let b, s = env in
                 path_to_col ~binds:b ~single:s pb) ))
          pairs
      in
      (lf @ rf, lw @ rw @ pair_preds, binds)
  | e -> unsupported "not a join tree: %s" (Expr.to_string e)

let build_of_expr e =
  (* Strip optional Distinct, projection, residual Select; then match a
     join tree or a single leaf. *)
  let distinct, e =
    match e with Expr.Distinct inner -> (true, inner) | _ -> (false, e)
  in
  let proj, e =
    match e with
    | Expr.Map (inner, h) when not (match h with Expr.Hstruct [ (_, Expr.Attr []) ] -> true | _ -> false) ->
        (Some (`Head h), inner)
    | Expr.Project (inner, attrs) -> (Some (`Attrs attrs), inner)
    | _ -> (None, e)
  in
  let residual, e =
    match e with
    | Expr.Select (inner, p)
      when match inner with
           | Expr.Join _ | Expr.Map (_, Expr.Hstruct [ (_, Expr.Attr []) ]) -> true
           | _ -> false ->
        (Some p, inner)
    | _ -> (None, e)
  in
  let build =
    match e with
    | Expr.Map (_, Expr.Hstruct [ (_, Expr.Attr []) ]) | Expr.Join _ ->
        let from, where, binds = match_join_tree e in
        let where =
          match residual with
          | None -> where
          | Some p -> where @ [ pred_to_sql (binds, None) p ]
        in
        let output =
          match proj with
          | None -> Out_binds binds
          | Some (`Head h) -> Out_head h
          | Some (`Attrs attrs) -> ignore attrs; unsupported "project over binding structs"
        in
        { from; where; output; binds; single = None }
    | _ ->
        let table, preds = match_leaf e in
        let alias = "t0" in
        let env = ([], Some alias) in
        let where = List.map (pred_to_sql env) preds in
        let where =
          match residual with
          | None -> where
          | Some p -> where @ [ pred_to_sql env p ]
        in
        let output =
          match proj with
          | None -> Out_tuple alias
          | Some (`Attrs attrs) -> Out_project attrs
          | Some (`Head h) -> Out_head h
        in
        { from = [ (table, alias) ]; where; output; binds = []; single = Some alias }
  in
  (distinct, build)

let conj = function
  | [] -> Sql.True
  | first :: rest -> List.fold_left (fun acc p -> Sql.And (acc, p)) first rest

let compile ~schema_of e =
  let distinct, b = build_of_expr e in
  let env = (b.binds, b.single) in
  let cols_of table =
    match schema_of table with
    | Some cols -> cols
    | None -> invalid_arg ("sqlgen: unknown source table " ^ table)
  in
  let table_of_alias alias =
    match List.find_opt (fun (_, a) -> String.equal a alias) b.from with
    | Some (table, _) -> table
    | None -> invalid_arg ("sqlgen: unknown alias " ^ alias)
  in
  (* SELECT items plus a rebuilder from each row. *)
  let items, rebuild_row =
    match b.output with
    | Out_tuple alias ->
        let cols = cols_of (table_of_alias alias) in
        let items =
          List.map (fun c -> Sql.Item (Sql.Col (Some alias, c), Some c)) cols
        in
        let rebuild row =
          V.strct (List.mapi (fun i c -> (c, row.(i))) cols)
        in
        (items, rebuild)
    | Out_project attrs ->
        let alias = Option.get b.single in
        let items =
          List.map (fun c -> Sql.Item (Sql.Col (Some alias, c), Some c)) attrs
        in
        let rebuild row =
          V.strct (List.mapi (fun i c -> (c, row.(i))) attrs)
        in
        (items, rebuild)
    | Out_binds binds ->
        (* one slice of columns per variable; rebuild nested structs *)
        let slices =
          List.map
            (fun (var, alias) -> (var, alias, cols_of (table_of_alias alias)))
            binds
        in
        let items =
          List.concat_map
            (fun (var, alias, cols) ->
              List.map
                (fun c ->
                  Sql.Item (Sql.Col (Some alias, c), Some (var ^ "__" ^ c)))
                cols)
            slices
        in
        let rebuild row =
          let _, fields =
            List.fold_left
              (fun (offset, acc) (var, _, cols) ->
                let sub =
                  V.strct
                    (List.mapi (fun i c -> (c, row.(offset + i))) cols)
                in
                (offset + List.length cols, (var, sub) :: acc))
              (0, []) slices
          in
          V.strct fields
        in
        (items, rebuild)
    | Out_head (Expr.Hscalar s) ->
        let items = [ Sql.Item (scalar_to_sql env s, Some "value") ] in
        ((items : Sql.item list), fun row -> row.(0))
    | Out_head (Expr.Hstruct fields) ->
        (* a field whose scalar is a whole binding variable expands to all
           its columns *)
        let expanded =
          List.map
            (fun (name, s) ->
              match s with
              | Expr.Attr [ var ] when List.mem_assoc var b.binds ->
                  let alias = List.assoc var b.binds in
                  let cols = cols_of (table_of_alias alias) in
                  `Tuple (name, alias, cols)
              | s -> `Scalar (name, s))
            fields
        in
        let items =
          List.concat_map
            (function
              | `Tuple (name, alias, cols) ->
                  List.map
                    (fun c ->
                      Sql.Item (Sql.Col (Some alias, c), Some (name ^ "__" ^ c)))
                    cols
              | `Scalar (name, s) -> [ Sql.Item (scalar_to_sql env s, Some name) ])
            expanded
        in
        let rebuild row =
          let _, out =
            List.fold_left
              (fun (offset, acc) part ->
                match part with
                | `Tuple (name, _, cols) ->
                    let sub =
                      V.strct (List.mapi (fun i c -> (c, row.(offset + i))) cols)
                    in
                    (offset + List.length cols, (name, sub) :: acc)
                | `Scalar (name, _) -> (offset + 1, (name, row.(offset)) :: acc))
              (0, []) expanded
          in
          V.strct out
        in
        (items, rebuild)
  in
  let sql =
    Sql.select ~distinct ~where:(conj b.where) items
      (List.map (fun (table, alias) -> (table, Some alias)) b.from)
  in
  let rebuild result =
    V.bag (List.map rebuild_row result.Sql.rows)
  in
  { sql; rebuild }
