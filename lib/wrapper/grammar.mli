(** Wrapper capability grammars (paper Section 3.2).

    A wrapper describes the logical expressions it accepts by returning a
    context-free grammar over operator tokens; the mediator serializes a
    candidate [Submit] argument into a token string and checks
    derivability. This module implements the grammar representation, an
    Earley recognizer (the grammars are tiny, so worst-case cubic cost is
    irrelevant), the serializer, and builders for the paper's grammar
    shapes — including its literal example: a wrapper that understands
    [get] and [project] of sources but not their composition:

    {v
    a :- b
    a :- c
    b :- get OPEN SOURCE CLOSE
    c :- project OPEN ATTRIBUTE COMMA SOURCE CLOSE
    v} *)

type symbol = T of string | N of string

type production = { lhs : string; rhs : symbol list }

type t = { start : string; productions : production list }

val pp : Format.formatter -> t -> unit
(** Prints in the paper's [a :- b] notation. *)

val parse : string -> t
(** Parse the paper notation: one production per line, [lhs :- sym sym
    ...]; UPPERCASE and punctuation-like names are terminals, lowercase
    names that appear as a lhs are nonterminals; the first lhs is the
    start symbol. An empty rhs is an empty production. Lowercase rhs
    names that are neither a defined nonterminal nor part of the
    serializer's terminal vocabulary (the operator names and predicate
    connectives of {!tokens_of_expr}) raise [Invalid_argument] — such a
    production could never derive anything and previously failed
    silently. *)

(** {1 Serialization of logical expressions} *)

val tokens_of_expr : Disco_algebra.Expr.expr -> string list
(** The token string of a logical expression. Terminals used: operator
    names ([get], [select], [project], [map], [join], [union],
    [distinct]), [OPEN], [CLOSE], [COMMA], [SOURCE], [ATTRIBUTE], [CONST],
    [ARITH], comparison symbols ([=], [!=], [<], [<=], [>], [>=]),
    [and], [or], [not], and [BIND] for the binding-struct constructor
    [Map(e, struct(x: @elem))] (so grammars can distinguish aliasing from
    computed maps).

    Attribute references serialize with their terminal field name:
    [Attr ["x"; "salary"]] becomes [ATTRIBUTE:salary] (and [Attr []],
    the whole element, stays [ATTRIBUTE]). In a grammar, the generic
    [ATTRIBUTE] terminal matches any [ATTRIBUTE:f] token, so
    attribute-agnostic grammars are unaffected; a named terminal
    [ATTRIBUTE:f] matches only that attribute, which is how
    {!indexed_lookup} advertises index-backed productions. *)

(** {1 Recognition} *)

val derives : t -> string list -> bool
(** Earley recognition: does the grammar derive the token string? *)

val accepts : t -> Disco_algebra.Expr.expr -> bool
(** [derives g (tokens_of_expr e)]. *)

(** {1 Coverage} *)

val production_to_string : production -> string
(** One production in the paper's [a :- b c] notation. *)

val named_attributes : t -> string list
(** The attribute names the grammar mentions as named terminals
    ([ATTRIBUTE:f]) — how {!indexed_lookup} advertises index-backed
    productions. Sorted, duplicates removed. *)

val used_productions : t -> string list -> production list
(** The productions that participate in at least one derivation of the
    token string, in grammar order; empty when the string does not
    derive. The static analyzer's coverage primitive: a production no
    workload sentence ever uses is a dead capability advertisement. *)

(** {1 Standard grammars} *)

val get_only : t
(** Only [get(SOURCE)]. *)

val project_no_compose : t
(** The paper's example: [get(SOURCE)] or [project(attrs, get(SOURCE))],
    no composition. *)

val select_pushdown : ?comparisons:string list -> unit -> t
(** [get], and [select(pred, get(SOURCE))] with the given comparison
    operators (default: all six); conjunction/disjunction/negation
    allowed. *)

val full_relational : t
(** Arbitrary composition of get/select/project/map/join/distinct with
    binds and all comparisons (including [like] and membership) — what a
    SQL wrapper advertises. Unions stay on the mediator: the paper's
    [mkunion] is always a mediator-side algorithm. *)

val key_lookup : t
(** [get(SOURCE)] or [select(ATTRIBUTE = CONST, get(SOURCE))] — a
    key-value store: scan or exact-match lookup only. *)

val indexed_lookup : ?eq:string list -> ?range:string list -> unit -> t
(** Index advertisement (the Mask-Mediator-Wrapper idea of exposing what
    a source serves cheaply): [get(SOURCE)], or [select] over it with a
    conjunction of comparisons that each name an indexed attribute —
    [ATTRIBUTE:a = CONST] for every [a] in [eq] (hash indexes), and
    additionally [<] [<=] [>] [>=] for every [a] in [range] (sorted
    indexes). Attributes outside the two lists are not derivable, so the
    optimizer can only push filters the source will answer from an
    access path. With both lists empty this degrades to {!get_only}. *)
