module Expr = Disco_algebra.Expr
module Source = Disco_source.Source
module Sql = Disco_relation.Sql
module Database = Disco_relation.Database
module Table = Disco_relation.Table
module Schema = Disco_relation.Schema
module V = Disco_value.Value

type error = Refused of string | Native_error of string

let error_message = function
  | Refused m -> "refused: " ^ m
  | Native_error m -> "source error: " ^ m

type t = {
  name : string;
  grammar : Grammar.t;
  execute : Source.t -> Expr.expr -> (V.t * int, error) result;
  execute_batch :
    (Source.t -> Expr.expr list -> (V.t * int, error) result list) option;
}

let name t = t.name
let functionality t = t.grammar
let accepts t e = Grammar.accepts t.grammar e
let execute t source e = t.execute source e

let execute_batch t source es =
  match t.execute_batch with
  | Some f -> f source es
  | None -> List.map (t.execute source) es

let make ?execute_batch ~name ~grammar ~execute () =
  { name; grammar; execute; execute_batch }

let refuse fmt = Format.kasprintf (fun m -> Error (Refused m)) fmt

let with_result v = Ok (v, V.cardinal v)

let relational_db source =
  match Source.kind source with
  | Source.Relational db -> Ok db
  | Source.Key_value _ | Source.Flat_file _ | Source.Text _ ->
      Error (Native_error (Source.id source ^ " is not relational"))

let table_bag db table_name =
  match Database.find_table db table_name with
  | Some table -> Ok (Table.to_bag table)
  | None -> Error (Native_error ("no collection named " ^ table_name))

(* -- SQL wrapper: full relational pushdown -- *)

let sql_execute source e =
  match relational_db source with
  | Error _ as err -> err
  | Ok db -> (
      match e with
      | Expr.Get table ->
          (* whole-extent scans skip SQL generation and read the column
             store directly — the same bag of structs the generated
             [SELECT *] rebuilds *)
          Result.bind (table_bag db table) with_result
      | _ -> (
      let schema_of table =
        Option.map
          (fun t -> Schema.column_names (Table.schema t))
          (Database.find_table db table)
      in
      match Sqlgen.compile ~schema_of e with
      | exception Sqlgen.Unsupported m -> Error (Refused m)
      | exception Invalid_argument m -> Error (Native_error m)
      | { Sqlgen.sql; rebuild } -> (
          match Sql.run db sql with
          | exception Sql.Sql_error m -> Error (Native_error m)
          | result -> with_result (rebuild result))))

let sql_wrapper () =
  {
    name = "WrapperSql";
    grammar = Grammar.full_relational;
    execute = sql_execute;
    execute_batch = None;
  }

(* -- evaluation-based wrappers over relational sources -- *)

(* Evaluate a restricted shape locally against the source's tables; used
   by the low-capability wrappers whose sources can only scan/filter. *)
let eval_against_db db e =
  let resolve name =
    match Database.find_table db name with
    | Some table -> Some (Table.to_bag table)
    | None -> None
  in
  match Expr.eval ~resolve e with
  | v -> with_result v
  | exception Expr.Algebra_error m -> Error (Native_error m)

let scan_execute source e =
  match relational_db source with
  | Error _ as err -> err
  | Ok db -> (
      match e with
      | Expr.Get table -> Result.bind (table_bag db table) with_result
      | e -> refuse "scan-only source cannot evaluate %s" (Expr.to_string e))

let scan_wrapper () =
  { name = "WrapperScan"; grammar = Grammar.get_only; execute = scan_execute;
    execute_batch = None }

let select_execute source e =
  match relational_db source with
  | Error _ as err -> err
  | Ok db -> (
      match e with
      | Expr.Get _ | Expr.Select (Expr.Get _, _) -> eval_against_db db e
      | e -> refuse "select wrapper cannot evaluate %s" (Expr.to_string e))

let select_wrapper ?comparisons () =
  {
    name = "WrapperSelect";
    grammar = Grammar.select_pushdown ?comparisons ();
    execute = select_execute;
    execute_batch = None;
  }

let project_execute source e =
  match relational_db source with
  | Error _ as err -> err
  | Ok db -> (
      match e with
      | Expr.Get _ | Expr.Project (Expr.Get _, _) -> eval_against_db db e
      | e -> refuse "project wrapper cannot evaluate %s" (Expr.to_string e))

let project_wrapper () =
  {
    name = "WrapperProject";
    grammar = Grammar.project_no_compose;
    execute = project_execute;
    execute_batch = None;
  }

(* -- key-value wrapper -- *)

let kv_bag source =
  V.bag (List.map snd (Source.kv_scan source))

let kv_execute source e =
  match Source.kind source with
  | Source.Relational _ | Source.Flat_file _ | Source.Text _ ->
      Error (Native_error (Source.id source ^ " is not a key-value store"))
  | Source.Key_value _ -> (
      match e with
      | Expr.Get _ -> with_result (kv_bag source)
      | Expr.Select
          (Expr.Get _, Expr.Cmp (Expr.Eq, Expr.Attr [ "key" ], Expr.Const (V.String k)))
      | Expr.Select
          (Expr.Get _, Expr.Cmp (Expr.Eq, Expr.Const (V.String k), Expr.Attr [ "key" ]))
        -> (
          (* exact-match lookup served by the store's index *)
          match Source.kv_get source k with
          | Some v -> with_result (V.bag [ v ])
          | None -> with_result (V.bag []))
      | Expr.Select (Expr.Get _, _) ->
          refuse "key-value store supports only equality on 'key'"
      | e -> refuse "key-value store cannot evaluate %s" (Expr.to_string e))

let kv_wrapper () =
  { name = "WrapperKV"; grammar = Grammar.key_lookup; execute = kv_execute;
    execute_batch = None }

(* -- flat-file wrapper -- *)

let file_execute source e =
  match Source.kind source with
  | Source.Relational _ | Source.Key_value _ | Source.Text _ ->
      Error (Native_error (Source.id source ^ " is not a flat file"))
  | Source.Flat_file _ -> (
      match e with
      | Expr.Get _ -> with_result (V.bag (Source.file_records source))
      | e -> refuse "flat file supports scans only, not %s" (Expr.to_string e))

let file_wrapper () =
  { name = "WrapperFile"; grammar = Grammar.get_only; execute = file_execute;
    execute_batch = None }

(* -- WAIS-style text wrapper -- *)

(* A pattern of the form %word% (one keyword) is served by the inverted
   index; anything more general is refused — the WAIS query model. *)
let single_keyword pattern =
  let n = String.length pattern in
  if n >= 2 && pattern.[0] = '%' && pattern.[n - 1] = '%' then
    let inner = String.sub pattern 1 (n - 2) in
    if
      inner <> ""
      && String.for_all
           (fun c ->
             (c >= 'a' && c <= 'z')
             || (c >= 'A' && c <= 'Z')
             || (c >= '0' && c <= '9'))
           inner
    then Some inner
    else None
  else None

let text_execute source e =
  match Source.kind source with
  | Source.Relational _ | Source.Key_value _ | Source.Flat_file _ ->
      Error (Native_error (Source.id source ^ " is not a text server"))
  | Source.Text idx -> (
      let module Text_index = Disco_source.Text_index in
      let docs_value docs =
        V.bag (List.map Text_index.doc_to_struct docs)
      in
      match e with
      | Expr.Get _ -> with_result (docs_value (Text_index.all idx))
      | Expr.Select
          (Expr.Get _, Expr.Cmp (Expr.Like, Expr.Attr [ field ], Expr.Const (V.String pattern)))
        -> (
          match (field, single_keyword pattern) with
          | "body", Some keyword ->
              with_result (docs_value (Text_index.search idx keyword))
          | "title", Some keyword ->
              with_result (docs_value (Text_index.search_title idx keyword))
          | _, Some _ -> refuse "text server indexes only title and body"
          | _, None ->
              refuse
                "text server answers single-keyword patterns (%%word%%), not                  %s"
                pattern)
      | e -> refuse "text server cannot evaluate %s" (Expr.to_string e))

let text_wrapper () =
  {
    name = "WrapperText";
    grammar =
      Grammar.parse
        {|
        a :- b
        a :- select OPEN ATTRIBUTE like CONST COMMA b CLOSE
        b :- get OPEN SOURCE CLOSE
      |};
    execute = text_execute;
    execute_batch = None;
  }

(* -- indexed wrapper: advertises index-backed filters only -- *)

let attr_field path = match List.rev path with f :: _ -> f | [] -> ""

let indexed_execute ~eq ~range source e =
  let indexed = eq @ range in
  let filter_ok op field =
    match op with
    | Expr.Eq -> List.mem field indexed
    | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge -> List.mem field range
    | Expr.Ne | Expr.Like -> false
  in
  let rec pred_ok = function
    | Expr.And (a, b) -> pred_ok a && pred_ok b
    | Expr.Cmp (op, Expr.Attr path, Expr.Const _)
    | Expr.Cmp (op, Expr.Const _, Expr.Attr path) ->
        filter_ok op (attr_field path)
    | _ -> false
  in
  match relational_db source with
  | Error _ as err -> err
  | Ok _ -> (
      match e with
      | Expr.Get _ -> sql_execute source e
      | Expr.Select (Expr.Get _, p) when pred_ok p ->
          (* runs on the columnar engine, which serves the comparison
             from the table's declared index when one exists *)
          sql_execute source e
      | e ->
          refuse "indexed source serves scans and indexed filters, not %s"
            (Expr.to_string e))

let indexed_wrapper ?(eq = []) ?(range = []) () =
  {
    name = "WrapperIndexed";
    grammar = Grammar.indexed_lookup ~eq ~range ();
    execute = indexed_execute ~eq ~range;
    execute_batch = None;
  }

let of_constructor_args ctor args =
  let list_arg name =
    match List.assoc_opt name args with
    | Some (V.String s) ->
        String.split_on_char ',' s
        |> List.map String.trim
        |> List.filter (fun x -> x <> "")
    | _ -> []
  in
  match String.lowercase_ascii ctor with
  | "wrapperpostgres" | "wrappersql" -> Some (sql_wrapper ())
  | "wrapperselect" -> Some (select_wrapper ())
  | "wrapperproject" -> Some (project_wrapper ())
  | "wrapperscan" -> Some (scan_wrapper ())
  | "wrapperkv" -> Some (kv_wrapper ())
  | "wrapperfile" -> Some (file_wrapper ())
  | "wrapperwais" | "wrappertext" -> Some (text_wrapper ())
  | "wrapperindexed" ->
      Some (indexed_wrapper ~eq:(list_arg "eq") ~range:(list_arg "range") ())
  | _ -> None

let of_constructor ctor = of_constructor_args ctor []
