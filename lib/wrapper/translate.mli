(** Name-space translation between mediator and data source.

    The arguments of [submit] are in the mediator's name space (paper
    Section 3.2); before a wrapper executes an expression, the extent's
    local transformation map (Section 2.2.2) renames collection and field
    names to the source's, and the answer is reformatted back. This module
    implements both directions, driven by a {e shape analysis} of the
    expression: raw source tuples need renaming, binding structs rename
    per variable, computed projections keep their mediator-chosen labels.

    [map_of] supplies each extent's map ({!Disco_odl.Typemap.identity}
    when the extent has none). *)

module Expr := Disco_algebra.Expr
module Typemap := Disco_odl.Typemap
module V := Disco_value.Value

(** The element shape an expression produces. *)
type shape =
  | Opaque  (** scalars, constants: no renaming *)
  | Tuple of string  (** a raw tuple of the named (mediator) extent *)
  | Record of (string * shape) list
      (** a struct with mediator-chosen field names and per-field shapes
          (binding structs, computed heads) *)

val shape_of : Expr.expr -> shape

val to_source : map_of:(string -> Typemap.t) -> Expr.expr -> Expr.expr
(** Rename collection names ([Get]) and the field components of attribute
    paths from mediator names to source names. *)

val answer_renamer : map_of:(string -> Typemap.t) -> Expr.expr -> V.t -> V.t
(** [answer_renamer ~map_of e] reformats a source-name-space answer of the
    {e mediator-name-space} expression [e] back to mediator names
    (element-wise over collections). *)
