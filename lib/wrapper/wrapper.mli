(** The wrapper interface and the built-in wrapper implementations.

    A wrapper (paper Sections 1.4 and 3.2) advertises its functionality as
    a {!Grammar.t} (the [submit-functionality] call) and executes logical
    expressions against a data source, translating them to the source's
    native operations and reformatting answers. Expressions arrive in the
    {e source} name space — the mediator's [exec] applies the extent map
    before calling ({!Translate}).

    Built-in wrappers, by decreasing capability:
    - {!sql_wrapper} — full relational pushdown via SQL generation
      (the paper's [WrapperPostgres]);
    - {!select_wrapper} — scan plus server-side filtering;
    - {!project_wrapper} — the paper's get/project-without-composition
      example;
    - {!scan_wrapper} — [get] only: ships whole collections;
    - {!kv_wrapper} — key-value stores: scan or exact key lookup;
    - {!file_wrapper} — flat record files: scan only. *)

module Expr := Disco_algebra.Expr
module Source := Disco_source.Source
module V := Disco_value.Value

type error =
  | Refused of string
      (** the expression is outside the wrapper's functionality *)
  | Native_error of string  (** the source failed executing it *)

val error_message : error -> string

type t

val name : t -> string

val functionality : t -> Grammar.t
(** The paper's [submit-functionality] method. *)

val accepts : t -> Expr.expr -> bool
(** Grammar derivability of the serialized expression — what
    transformation rules consult before pushing an operator into a
    [Submit]. *)

val execute : t -> Source.t -> Expr.expr -> (V.t * int, error) result
(** Run a source-name-space logical expression against the source's
    native store. Returns the (source-name-space) answer and its row
    count (used to price the transfer). Never raises: native failures are
    [Error (Native_error _)], out-of-capability shapes
    [Error (Refused _)]. Wrappers re-validate shapes independently of the
    grammar, so a mediator that ignores {!accepts} still gets a clean
    refusal. *)

val execute_batch :
  t -> Source.t -> Expr.expr list -> (V.t * int, error) result list
(** Run several expressions against the source in one round-trip. The
    result list is positional: element [i] answers expression [i], and
    the list always has exactly one element per input expression.
    Wrappers that do not opt in (via {!make}'s [?execute_batch]) fall
    back to sequential per-expression {!execute} — semantics are
    identical either way; only the latency accounting differs (the
    runtime prices a batched call's [base_ms] once). *)

val make :
  ?execute_batch:(Source.t -> Expr.expr list -> (V.t * int, error) result list) ->
  name:string ->
  grammar:Grammar.t ->
  execute:(Source.t -> Expr.expr -> (V.t * int, error) result) ->
  unit ->
  t
(** Build a custom wrapper (how a DBI extends the system).
    [?execute_batch] opts into native multi-expression round-trips; when
    omitted, {!execute_batch} falls back to per-expression {!execute}.
    An implementation must return exactly one (positional) result per
    input expression.

    {b Concurrency.} Under a wall-clock scheduler
    ({!Disco_source.Scheduler.wall} — serve mode, E15) the runtime
    issues one round's per-source batches genuinely in parallel on
    several domains, so [execute] and [execute_batch] may be invoked
    concurrently (for different sources within one query, and for the
    same wrapper value across queries when mediator replicas share it).
    Implementations must be re-entrant or take their own lock; the
    built-in wrappers are pure over the source snapshot and need
    neither. *)

(** {1 Built-in wrappers} *)

val sql_wrapper : unit -> t
val select_wrapper : ?comparisons:string list -> unit -> t
val project_wrapper : unit -> t
val scan_wrapper : unit -> t
val kv_wrapper : unit -> t
(** Stored values must be structs; exact-match lookups are served by the
    store's index when the filter is an equality on the [key] field. *)

val file_wrapper : unit -> t

val text_wrapper : unit -> t
(** WAIS-style document server: scans, or single-keyword [like "%w%"]
    filters on [title] / [body] served by the inverted index. *)

val indexed_wrapper : ?eq:string list -> ?range:string list -> unit -> t
(** A relational source that advertises exactly its access paths: scans,
    plus conjunctions of comparisons on the named attributes
    ({!Grammar.indexed_lookup} — [eq] attributes accept equality, [range]
    attributes also accept [<] [<=] [>] [>=]). Accepted filters execute
    through the SQL path, so the columnar engine serves them from the
    table's {!Disco_relation.Table.declare_index} access path when one is
    declared. *)

val of_constructor : string -> t option
(** Resolve an ODL constructor name ([w0 := WrapperPostgres();]) to a
    wrapper: [WrapperPostgres] / [WrapperSql] → {!sql_wrapper},
    [WrapperSelect] → {!select_wrapper}, [WrapperProject] →
    {!project_wrapper}, [WrapperScan] → {!scan_wrapper}, [WrapperKV] →
    {!kv_wrapper}, [WrapperFile] → {!file_wrapper}, [WrapperIndexed] →
    {!indexed_wrapper}. Case-insensitive. *)

val of_constructor_args : string -> (string * Disco_value.Value.t) list -> t option
(** Like {!of_constructor}, but passing the ODL constructor's named
    arguments through; [WrapperIndexed(eq = "id", range = "salary,age")]
    takes comma-separated attribute lists in its [eq] / [range]
    arguments. Unknown arguments are ignored. *)
