module Expr = Disco_algebra.Expr

type symbol = T of string | N of string
type production = { lhs : string; rhs : symbol list }
type t = { start : string; productions : production list }

let pp_symbol ppf = function
  | T s -> Fmt.string ppf s
  | N s -> Fmt.string ppf s

let pp ppf g =
  List.iter
    (fun p ->
      Fmt.pf ppf "%s :- %a@\n" p.lhs
        (Fmt.list ~sep:Fmt.sp pp_symbol)
        p.rhs)
    g.productions

let parse text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let split_production line =
    match Str_split.split_on_substring ~sep:":-" line with
    | [ lhs; rhs ] ->
        ( String.trim lhs,
          String.split_on_char ' ' (String.trim rhs)
          |> List.filter (fun s -> s <> "") )
    | _ -> invalid_arg ("Grammar.parse: malformed production: " ^ line)
  in
  let raw = List.map split_production lines in
  let nonterminals = List.map fst raw in
  (* the terminal vocabulary [tokens_of_expr] can actually emit: operator
     names plus predicate connectives. Anything else lowercase on a rhs
     is a typo'd nonterminal — a silent one would make the production
     underivable forever, so reject it here. *)
  let operator_terminals =
    [
      "get"; "select"; "project"; "map"; "join"; "union"; "distinct";
      "like"; "and"; "or"; "not"; "member";
    ]
  in
  let symbol s =
    if List.mem s nonterminals then N s
    else
      let lowercase_name =
        s <> "" && (match s.[0] with 'a' .. 'z' -> true | _ -> false)
      in
      if (not lowercase_name) || List.mem s operator_terminals then T s
      else
        invalid_arg
          (Printf.sprintf
             "Grammar.parse: %S is neither a defined nonterminal nor a \
              known terminal"
             s)
  in
  let productions =
    List.map (fun (lhs, rhs) -> { lhs; rhs = List.map symbol rhs }) raw
  in
  match productions with
  | [] -> invalid_arg "Grammar.parse: empty grammar"
  | first :: _ -> { start = first.lhs; productions }

(* -- serialization -- *)

let cmp_token = function
  | Expr.Eq -> "="
  | Expr.Ne -> "!="
  | Expr.Lt -> "<"
  | Expr.Le -> "<="
  | Expr.Gt -> ">"
  | Expr.Ge -> ">="
  | Expr.Like -> "like"

(* Attributes serialize with their terminal field name —
   [ATTRIBUTE:salary] — so a grammar can advertise productions over
   specific attributes (an indexed wrapper names its indexed columns).
   The generic [ATTRIBUTE] terminal matches any of them (see
   [token_matches]), which keeps every attribute-agnostic grammar
   unchanged. *)
let attr_token path =
  match List.rev path with
  | [] -> "ATTRIBUTE"
  | field :: _ -> "ATTRIBUTE:" ^ field

let rec scalar_tokens = function
  | Expr.Attr path -> [ attr_token path ]
  | Expr.Const _ -> [ "CONST" ]
  | Expr.Arith (_, a, b) ->
      (* arithmetic collapses to one ARITH marker surrounding operands *)
      ("ARITH" :: scalar_tokens a) @ scalar_tokens b

let rec pred_tokens = function
  | Expr.True -> [ "CONST" ]
  | Expr.Cmp (op, a, b) -> scalar_tokens a @ [ cmp_token op ] @ scalar_tokens b
  | Expr.Member (a, _) -> scalar_tokens a @ [ "member"; "CONST" ]
  | Expr.And (a, b) -> pred_tokens a @ [ "and" ] @ pred_tokens b
  | Expr.Or (a, b) -> pred_tokens a @ [ "or" ] @ pred_tokens b
  | Expr.Not a -> "not" :: pred_tokens a

let head_tokens = function
  | Expr.Hscalar s -> scalar_tokens s
  | Expr.Hstruct fields ->
      List.concat
        (List.mapi
           (fun i (_, s) -> if i = 0 then scalar_tokens s else "COMMA" :: scalar_tokens s)
           fields)

let rec tokens_of_expr = function
  | Expr.Get _ -> [ "get"; "OPEN"; "SOURCE"; "CLOSE" ]
  | Expr.Data _ -> [ "CONST" ]
  | Expr.Select (e, p) ->
      [ "select"; "OPEN" ] @ pred_tokens p @ [ "COMMA" ] @ tokens_of_expr e
      @ [ "CLOSE" ]
  | Expr.Project (e, attrs) ->
      let attr_toks =
        List.concat
          (List.mapi
             (fun i a ->
               let t = attr_token [ a ] in
               if i = 0 then [ t ] else [ "COMMA"; t ])
             attrs)
      in
      [ "project"; "OPEN" ] @ attr_toks @ [ "COMMA" ] @ tokens_of_expr e
      @ [ "CLOSE" ]
  | Expr.Map (e, Expr.Hstruct [ (_, Expr.Attr []) ]) ->
      (* a pure bind (aliasing), distinguished from computed maps *)
      [ "BIND"; "OPEN" ] @ tokens_of_expr e @ [ "CLOSE" ]
  | Expr.Map (e, h) ->
      [ "map"; "OPEN" ] @ head_tokens h @ [ "COMMA" ] @ tokens_of_expr e
      @ [ "CLOSE" ]
  | Expr.Join (l, r, pairs) ->
      let pair_toks =
        List.concat
          (List.mapi
             (fun i (pl, pr) ->
               let eq = [ attr_token pl; "="; attr_token pr ] in
               if i = 0 then eq else "COMMA" :: eq)
             pairs)
      in
      [ "join"; "OPEN" ] @ tokens_of_expr l @ [ "COMMA" ] @ tokens_of_expr r
      @ (if pairs = [] then [] else "COMMA" :: pair_toks)
      @ [ "CLOSE" ]
  | Expr.Union es ->
      [ "union"; "OPEN" ]
      @ List.concat
          (List.mapi
             (fun i e ->
               if i = 0 then tokens_of_expr e else "COMMA" :: tokens_of_expr e)
             es)
      @ [ "CLOSE" ]
  | Expr.Distinct e -> [ "distinct"; "OPEN" ] @ tokens_of_expr e @ [ "CLOSE" ]
  | Expr.Submit (_, _) -> [ "SUBMIT" ]
(* nested submits never reach a wrapper; the token makes them unparseable *)

(* -- Earley recognition -- *)

(* The generic [ATTRIBUTE] terminal matches any named attribute token;
   a named terminal ([ATTRIBUTE:salary]) matches only itself. *)
let token_matches terminal tok =
  String.equal terminal tok
  || (String.equal terminal "ATTRIBUTE"
     && String.starts_with ~prefix:"ATTRIBUTE:" tok)

type item = { prod : production; dot : int; origin : int }

let derives g tokens =
  let tokens = Array.of_list tokens in
  let n = Array.length tokens in
  let chart = Array.make (n + 1) [] in
  let add k item =
    if not (List.mem item chart.(k)) then (
      chart.(k) <- item :: chart.(k);
      true)
    else false
  in
  let predict k nt =
    List.iter
      (fun p -> if p.lhs = nt then ignore (add k { prod = p; dot = 0; origin = k }))
      g.productions
  in
  (* seed *)
  predict 0 g.start;
  let rec process k =
    (* iterate until chart.(k) stops growing *)
    let changed = ref false in
    let items = chart.(k) in
    List.iter
      (fun item ->
        if item.dot < List.length item.prod.rhs then
          match List.nth item.prod.rhs item.dot with
          | N nt ->
              (* predictor *)
              List.iter
                (fun p ->
                  if p.lhs = nt then
                    if add k { prod = p; dot = 0; origin = k } then
                      changed := true)
                g.productions;
              (* completer for already-complete items starting at k
                 (nullable rules) *)
              List.iter
                (fun c ->
                  if
                    c.origin = k && c.dot = List.length c.prod.rhs
                    && c.prod.lhs = nt
                  then if add k { item with dot = item.dot + 1 } then changed := true)
                chart.(k)
          | T _ -> ()
        else
          (* completer: item is complete; advance items waiting on its lhs *)
          List.iter
            (fun waiting ->
              if waiting.dot < List.length waiting.prod.rhs then
                match List.nth waiting.prod.rhs waiting.dot with
                | N nt when nt = item.prod.lhs ->
                    if add k { waiting with dot = waiting.dot + 1 } then
                      changed := true
                | _ -> ())
            chart.(item.origin))
      items;
    if !changed then process k
  in
  process 0;
  let scan k =
    if k < n then
      List.iter
        (fun item ->
          if item.dot < List.length item.prod.rhs then
            match List.nth item.prod.rhs item.dot with
            | T t when token_matches t tokens.(k) ->
                ignore (add (k + 1) { item with dot = item.dot + 1 })
            | _ -> ())
        chart.(k)
  in
  for k = 0 to n - 1 do
    scan k;
    process (k + 1)
  done;
  List.exists
    (fun item ->
      item.prod.lhs = g.start
      && item.origin = 0
      && item.dot = List.length item.prod.rhs)
    chart.(n)

let accepts g e = derives g (tokens_of_expr e)

(* -- derivation coverage -- *)

let production_to_string p =
  p.lhs ^ " :- " ^ String.concat " " (List.map (function T t -> t | N n -> n) p.rhs)

let named_attributes g =
  let prefix = "ATTRIBUTE:" in
  let plen = String.length prefix in
  List.concat_map
    (fun p ->
      List.filter_map
        (function
          | T t when String.starts_with ~prefix t ->
              Some (String.sub t plen (String.length t - plen))
          | T _ | N _ -> None)
        p.rhs)
    g.productions
  |> List.sort_uniq String.compare

(* Which productions participate in a derivation? The Earley chart above
   keeps no back-pointers, so coverage is computed separately: a
   least-fixpoint derivability table over spans, then a top-down mark of
   every production usable in some derivation of the whole sentence.
   Grammars and sentences are tiny, so the cubic table is irrelevant. *)
let used_productions g sentence =
  let tokens = Array.of_list sentence in
  let n = Array.length tokens in
  let derivable : (string * int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let d nt i j = Hashtbl.mem derivable (nt, i, j) in
  (* end positions reachable by deriving [syms] from position [i] *)
  let rec ends syms i =
    match syms with
    | [] -> [ i ]
    | T t :: rest ->
        if i < n && token_matches t tokens.(i) then ends rest (i + 1) else []
    | N nt :: rest ->
        List.init (n - i + 1) (fun k -> i + k)
        |> List.concat_map (fun j -> if d nt i j then ends rest j else [])
        |> List.sort_uniq compare
  in
  let spans syms i j = List.mem j (ends syms i) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun p ->
        for i = 0 to n do
          for j = i to n do
            if (not (d p.lhs i j)) && spans p.rhs i j then (
              Hashtbl.replace derivable (p.lhs, i, j) ();
              changed := true)
          done
        done)
      g.productions
  done;
  let used : (production, unit) Hashtbl.t = Hashtbl.create 16 in
  let visited : (string * int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  (* [spans p.rhs i j] holding means some split derives the span; walk
     every valid split so each usable production is marked *)
  let rec visit nt i j =
    if not (Hashtbl.mem visited (nt, i, j)) then (
      Hashtbl.replace visited (nt, i, j) ();
      List.iter
        (fun p ->
          if p.lhs = nt && spans p.rhs i j then (
            Hashtbl.replace used p ();
            mark_rhs p.rhs i j))
        g.productions)
  and mark_rhs syms i j =
    match syms with
    | [] -> ()
    | T t :: rest ->
        if i < n && token_matches t tokens.(i) then mark_rhs rest (i + 1) j
    | N nt :: rest ->
        for k = i to j do
          if d nt i k && spans rest k j then (
            visit nt i k;
            mark_rhs rest k j)
        done
  in
  if d g.start 0 n then visit g.start 0 n;
  List.filter (Hashtbl.mem used) g.productions

(* -- standard grammars -- *)

let get_only =
  parse {|
    a :- get OPEN SOURCE CLOSE
  |}

let project_no_compose =
  parse
    {|
    a :- b
    a :- c
    b :- get OPEN SOURCE CLOSE
    c :- project OPEN attrs COMMA b CLOSE
    attrs :- ATTRIBUTE
    attrs :- ATTRIBUTE COMMA attrs
  |}

let select_pushdown ?(comparisons = [ "="; "!="; "<"; "<="; ">"; ">=" ]) () =
  let cmp_prods =
    comparisons
    |> List.map (fun c -> Fmt.str "cmp :- %s" c)
    |> String.concat "\n"
  in
  parse
    (Fmt.str
       {|
    a :- b
    a :- s
    b :- get OPEN SOURCE CLOSE
    s :- select OPEN pred COMMA b CLOSE
    pred :- operand cmp operand
    pred :- pred and pred
    pred :- pred or pred
    pred :- not pred
    pred :- CONST
    operand :- ATTRIBUTE
    operand :- CONST
    %s
  |}
       cmp_prods)

let full_relational =
  parse
    {|
    a :- b
    a :- select OPEN pred COMMA a CLOSE
    a :- project OPEN attrs COMMA a CLOSE
    a :- map OPEN heads COMMA a CLOSE
    a :- join OPEN a COMMA a CLOSE
    a :- join OPEN a COMMA a COMMA eqs CLOSE
    a :- distinct OPEN a CLOSE
    a :- BIND OPEN a CLOSE
    b :- get OPEN SOURCE CLOSE
    attrs :- ATTRIBUTE
    attrs :- ATTRIBUTE COMMA attrs
    heads :- scalar
    heads :- scalar COMMA heads
    scalar :- ATTRIBUTE
    scalar :- CONST
    scalar :- ARITH scalar scalar
    eqs :- ATTRIBUTE = ATTRIBUTE
    eqs :- ATTRIBUTE = ATTRIBUTE COMMA eqs
    pred :- operand cmp operand
    pred :- operand member CONST
    pred :- pred and pred
    pred :- pred or pred
    pred :- not pred
    pred :- CONST
    operand :- scalar
    cmp :- =
    cmp :- !=
    cmp :- <
    cmp :- <=
    cmp :- >
    cmp :- >=
    cmp :- like
  |}

let key_lookup =
  parse
    {|
    a :- b
    a :- select OPEN ATTRIBUTE = CONST COMMA b CLOSE
    b :- get OPEN SOURCE CLOSE
  |}

let indexed_lookup ?(eq = []) ?(range = []) () =
  (* Index advertisement: productions name the indexed attributes, so the
     grammar accepts exactly the filters the source can serve from an
     access path (plus whole scans), and nothing else. *)
  let dedup xs = List.sort_uniq String.compare xs in
  let eq = dedup eq and range = dedup range in
  let eq_prods a =
    [
      Fmt.str "pred :- ATTRIBUTE:%s = CONST" a;
      Fmt.str "pred :- CONST = ATTRIBUTE:%s" a;
    ]
  in
  let range_prods a =
    List.concat_map
      (fun op ->
        [
          Fmt.str "pred :- ATTRIBUTE:%s %s CONST" a op;
          Fmt.str "pred :- CONST %s ATTRIBUTE:%s" op a;
        ])
      [ "="; "<"; "<="; ">"; ">=" ]
  in
  let pred_prods =
    dedup (List.concat_map eq_prods eq @ List.concat_map range_prods range)
  in
  match pred_prods with
  | [] -> get_only
  | _ ->
      parse
        (Fmt.str
           {|
    a :- b
    a :- select OPEN pred COMMA b CLOSE
    b :- get OPEN SOURCE CLOSE
    pred :- pred and pred
    %s
  |}
           (String.concat "\n" pred_prods))
